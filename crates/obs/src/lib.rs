//! # kr-obs — zero-dependency observability with a deterministic-clock contract
//!
//! Structured spans, counters, and fixed-bucket histograms for the
//! Khatri-Rao clustering workspace, recorded into lock-free per-thread
//! ring buffers (bounded, seq-cst-free, drop-counting on overflow)
//! and drained by a [`Recorder`] into JSONL or an in-process
//! [`Snapshot`].
//!
//! ## The determinism contract
//!
//! Instrumentation must be *bitwise invisible*: with the `obs` feature
//! on and a recorder attached, every numeric result — labels,
//! centroids, inertia bits, sufficient statistics, wire totals — is
//! identical to the obs-off run, at any worker count, in every kernel
//! and prune mode. Three mechanisms enforce this:
//!
//! 1. **No wall clock.** Time flows only through the [`Clock`] trait;
//!    [`MonotonicClock`] (the single sanctioned `Instant` site, in
//!    [`clock`]) is for production traces, [`VirtualClock`]
//!    (deterministic ticks) is the test/CI default.
//! 2. **True no-ops when off.** The [`span!`]/[`counter!`]/[`hist!`]/
//!    [`gauge!`] macros expand to nothing unless the *invoking* crate's
//!    `obs` cargo feature is enabled; default builds carry zero
//!    instrumentation cost.
//! 3. **Macros only.** Instrumented crates never touch [`Recorder`] or
//!    [`Clock`] directly — kr-verify's `obs-macro-only` rule bans it —
//!    so recording can never feed a value back into a numeric path.
//!
//! ## Recording
//!
//! ```
//! use std::sync::Arc;
//!
//! let recorder = kr_obs::Recorder::install(Arc::new(kr_obs::VirtualClock::new()));
//! // ... run instrumented code built with `--features obs` ...
//! let snapshot = recorder.snapshot();
//! let jsonl = snapshot.to_jsonl();
//! assert_eq!(kr_obs::Snapshot::parse_jsonl(&jsonl).unwrap().events, snapshot.events);
//! ```
//!
//! Set `KR_OBS=trace.jsonl` and call [`init_from_env`] once at startup
//! (the `streaming` example does) to capture a wall-clock trace to a
//! file; see EXPERIMENTS.md "Observability" for the event schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
mod event;
mod ring;

pub use clock::{Clock, MonotonicClock, VirtualClock};
pub use event::{
    bucket_index, parse_line, write_line, Event, EventKind, EventValue, Histogram, ParseError,
    Snapshot, HIST_BUCKETS,
};

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Interned-key sentinel meaning "this event has no label".
#[doc(hidden)]
pub const NO_LABEL: u32 = u32::MAX;

// Fast-path gate: true while a recorder is installed. Relaxed is
// deliberate — a thread that observes the flag late merely records a
// few events into a ring the next refresh discards, or skips a few.
static ENABLED: AtomicBool = AtomicBool::new(false);
// Bumped on every install so thread-local sessions know to re-register.
static GENERATION: AtomicU64 = AtomicU64::new(0);
// Global span-id well; ids only need to be unique, not dense.
static SPAN_IDS: AtomicU64 = AtomicU64::new(0);
// The installed recorder's state. Locked only on install, snapshot, and
// once per (thread, generation) registration — never on the per-event
// record path.
static REGISTRY: Mutex<Option<GlobalState>> = Mutex::new(None);
// Name intern table: macros resolve each name once per call site
// through a `OnceLock`, so this lock is also off the hot path.
static INTERN: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

struct GlobalState {
    gen: u64,
    clock: Arc<dyn Clock>,
    rings: Vec<Arc<ring::Ring>>,
}

struct ThreadSlot {
    gen: Cell<u64>,
    ring: RefCell<Option<Arc<ring::Ring>>>,
    clock: RefCell<Option<Arc<dyn Clock>>>,
}

thread_local! {
    static SLOT: ThreadSlot = const {
        ThreadSlot {
            gen: Cell::new(0),
            ring: RefCell::new(None),
            clock: RefCell::new(None),
        }
    };
}

/// Interns an event or label name, returning its table id. Macros call
/// this once per call site (cached in a `OnceLock`); it is not a
/// hot-path function.
#[doc(hidden)]
pub fn intern(name: &'static str) -> u32 {
    let mut table = INTERN.lock().expect("obs intern table poisoned");
    if let Some(i) = table.iter().position(|&s| s == name) {
        return i as u32;
    }
    assert!(table.len() < NO_LABEL as usize, "obs intern table overflow");
    table.push(name);
    (table.len() - 1) as u32
}

/// Runs `f` with the calling thread's ring and clock for the current
/// recorder generation, registering the thread first if needed. Returns
/// `None` when no recorder is installed.
fn with_session<R>(f: impl FnOnce(&ring::Ring, &dyn Clock) -> R) -> Option<R> {
    SLOT.with(|slot| {
        let gen = GENERATION.load(Ordering::Acquire);
        if slot.gen.get() != gen {
            refresh(slot, gen);
        }
        let ring = slot.ring.borrow();
        let clock = slot.clock.borrow();
        match (ring.as_deref(), clock.as_deref()) {
            (Some(r), Some(c)) => Some(f(r, c)),
            _ => None,
        }
    })
}

/// Re-registers the calling thread against the current recorder (slow
/// path: once per thread per install).
fn refresh(slot: &ThreadSlot, gen: u64) {
    let mut registry = REGISTRY.lock().expect("obs registry poisoned");
    match registry.as_mut() {
        Some(state) if state.gen == gen => {
            let ring = Arc::new(ring::Ring::new(
                state.rings.len() as u32,
                ring::RING_CAPACITY,
            ));
            state.rings.push(Arc::clone(&ring));
            *slot.ring.borrow_mut() = Some(ring);
            *slot.clock.borrow_mut() = Some(Arc::clone(&state.clock));
        }
        _ => {
            *slot.ring.borrow_mut() = None;
            *slot.clock.borrow_mut() = None;
        }
    }
    slot.gen.set(gen);
}

fn record(kind: EventKind, name: u32, value: u64, span: u64, label_key: u32, label_val: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    with_session(|ring, clock| {
        ring.push(ring::RawEvent {
            ts: clock.now_nanos(),
            kind: kind.code(),
            name,
            value,
            span,
            label_key,
            label_val,
        });
    });
}

/// Macro plumbing: the functions the `obs` macros expand to. Direct
/// calls from instrumented crates are banned by kr-verify's
/// `obs-macro-only` rule — go through [`counter!`]/[`hist!`]/[`gauge!`].
#[doc(hidden)]
pub mod rt {
    use super::*;

    /// Records one counter increment.
    pub fn record_counter(name: u32, value: u64, label_key: u32, label_val: u64) {
        record(EventKind::Counter, name, value, 0, label_key, label_val);
    }

    /// Records one histogram sample.
    pub fn record_hist(name: u32, value: u64, label_key: u32, label_val: u64) {
        record(EventKind::Hist, name, value, 0, label_key, label_val);
    }

    /// Records one gauge reading.
    pub fn record_gauge(name: u32, value: f64, label_key: u32, label_val: u64) {
        record(
            EventKind::Gauge,
            name,
            value.to_bits(),
            0,
            label_key,
            label_val,
        );
    }
}

/// An open span: records `span_enter` on creation (via [`span!`]) and
/// `span_exit` — whose value is the clock-unit duration — when dropped.
///
/// Inert (a cheap two-branch drop) when no recorder is installed; not
/// constructed at all when the invoking crate's `obs` feature is off
/// ([`span!`] expands to [`NoopSpan`] instead).
#[must_use = "a span measures the scope it is bound to; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    name: u32,
    span: u64,
    start: u64,
    label_key: u32,
    label_val: u64,
    active: bool,
}

impl SpanGuard {
    /// Opens a span. Macro plumbing — use [`span!`].
    #[doc(hidden)]
    pub fn enter(name: u32, label_key: u32, label_val: u64) -> SpanGuard {
        let inert = SpanGuard {
            name,
            span: 0,
            start: 0,
            label_key,
            label_val,
            active: false,
        };
        if !ENABLED.load(Ordering::Relaxed) {
            return inert;
        }
        let span = SPAN_IDS.fetch_add(1, Ordering::Relaxed) + 1;
        let start = with_session(|ring, clock| {
            let ts = clock.now_nanos();
            ring.push(ring::RawEvent {
                ts,
                kind: EventKind::SpanEnter.code(),
                name,
                value: 0,
                span,
                label_key,
                label_val,
            });
            ts
        });
        match start {
            Some(start) => SpanGuard {
                span,
                start,
                active: true,
                ..inert
            },
            None => inert,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        with_session(|ring, clock| {
            let ts = clock.now_nanos();
            ring.push(ring::RawEvent {
                ts,
                kind: EventKind::SpanExit.code(),
                name: self.name,
                value: ts.saturating_sub(self.start),
                span: self.span,
                label_key: self.label_key,
                label_val: self.label_val,
            });
        });
    }
}

/// Zero-sized stand-in [`span!`] returns when the invoking crate's
/// `obs` feature is off: no fields, no `Drop`, nothing to optimize out.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSpan;

/// Drains recorded events from every thread's ring buffer.
///
/// Installing a recorder enables recording globally (last install
/// wins); dropping it disables recording again. [`Recorder::snapshot`]
/// is draining: each event is returned once, and the overflow drop
/// count is taken-and-reset alongside it.
pub struct Recorder {
    gen: u64,
}

impl Recorder {
    /// Installs a recorder timing events against `clock` and enables
    /// recording. A newer install supersedes an older recorder, whose
    /// snapshots become empty.
    pub fn install(clock: Arc<dyn Clock>) -> Recorder {
        let mut registry = REGISTRY.lock().expect("obs registry poisoned");
        let gen = GENERATION.load(Ordering::Relaxed) + 1;
        *registry = Some(GlobalState {
            gen,
            clock,
            rings: Vec::new(),
        });
        // Release: a thread that acquires the new generation must see
        // the registry entry its refresh will look up.
        GENERATION.store(gen, Ordering::Release);
        ENABLED.store(true, Ordering::Release);
        Recorder { gen }
    }

    /// [`Recorder::install`] with a fresh [`VirtualClock`] — the
    /// deterministic test/CI default.
    pub fn install_virtual() -> Recorder {
        Recorder::install(Arc::new(VirtualClock::new()))
    }

    /// Drains every ring into a timestamp-sorted [`Snapshot`]. Returns
    /// an empty snapshot if this recorder has been superseded.
    pub fn snapshot(&self) -> Snapshot {
        let registry = REGISTRY.lock().expect("obs registry poisoned");
        let Some(state) = registry.as_ref().filter(|s| s.gen == self.gen) else {
            return Snapshot::default();
        };
        let names: Vec<&'static str> = INTERN.lock().expect("obs intern table poisoned").clone();
        let resolve = |id: u32| names.get(id as usize).copied().unwrap_or("?").to_string();
        let mut dropped = 0u64;
        let mut raw = Vec::new();
        let mut events = Vec::new();
        for ring in &state.rings {
            raw.clear();
            ring.drain_into(&mut raw);
            dropped += ring.take_dropped();
            for e in &raw {
                let kind = EventKind::from_code(e.kind);
                events.push(Event {
                    ts: e.ts,
                    span: e.span,
                    kind,
                    name: resolve(e.name),
                    value: match kind {
                        EventKind::Gauge => EventValue::Float(f64::from_bits(e.value)),
                        _ => EventValue::Int(e.value),
                    },
                    worker: ring.worker(),
                    label: (e.label_key != NO_LABEL).then(|| (resolve(e.label_key), e.label_val)),
                });
            }
        }
        // Stable: ties keep per-ring (i.e. per-worker program) order.
        events.sort_by_key(|e| e.ts);
        Snapshot { events, dropped }
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        let mut registry = REGISTRY.lock().expect("obs registry poisoned");
        if registry.as_ref().is_some_and(|s| s.gen == self.gen) {
            ENABLED.store(false, Ordering::Relaxed);
            *registry = None;
        }
    }
}

/// A recorder writing its trace to a file when dropped (or on
/// [`TraceFile::finish`]).
pub struct TraceFile {
    recorder: Option<Recorder>,
    path: std::path::PathBuf,
}

impl TraceFile {
    /// Writes the final snapshot to the trace path, returning the
    /// number of events written. Idempotent; also runs on drop.
    pub fn finish(mut self) -> std::io::Result<usize> {
        self.write_out()
    }

    fn write_out(&mut self) -> std::io::Result<usize> {
        let Some(recorder) = self.recorder.take() else {
            return Ok(0);
        };
        let snapshot = recorder.snapshot();
        std::fs::write(&self.path, snapshot.to_jsonl())?;
        Ok(snapshot.len())
    }
}

impl Drop for TraceFile {
    fn drop(&mut self) {
        let _ = self.write_out();
    }
}

/// If `KR_OBS=<path>` is set, installs a [`MonotonicClock`] recorder
/// and returns a [`TraceFile`] that writes the JSONL trace to `<path>`
/// when dropped. Call once at startup:
///
/// ```no_run
/// let _trace = kr_obs::init_from_env();
/// // ... run instrumented work; the trace lands when `_trace` drops.
/// ```
pub fn init_from_env() -> Option<TraceFile> {
    let path = std::env::var_os("KR_OBS")?;
    Some(TraceFile {
        recorder: Some(Recorder::install(Arc::new(MonotonicClock::new()))),
        path: path.into(),
    })
}

/// Opens a [`SpanGuard`] measuring the enclosing scope:
/// `let _span = kr_obs::span!("kmeans.lloyd");` or, with a numeric
/// label, `kr_obs::span!("fed.round", "round" => round_idx)`.
///
/// Compiles to a zero-sized no-op unless the invoking crate's `obs`
/// cargo feature is enabled; records only while a [`Recorder`] is
/// installed.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        #[cfg(feature = "obs")]
        {
            static __KR_OBS_NAME: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            $crate::SpanGuard::enter(
                *__KR_OBS_NAME.get_or_init(|| $crate::intern($name)),
                $crate::NO_LABEL,
                0,
            )
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = || $name;
            $crate::NoopSpan
        }
    }};
    ($name:expr, $key:expr => $val:expr) => {{
        #[cfg(feature = "obs")]
        {
            static __KR_OBS_NAME: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            static __KR_OBS_KEY: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            $crate::SpanGuard::enter(
                *__KR_OBS_NAME.get_or_init(|| $crate::intern($name)),
                *__KR_OBS_KEY.get_or_init(|| $crate::intern($key)),
                ($val) as u64,
            )
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = || ($name, $key, $val);
            $crate::NoopSpan
        }
    }};
}

/// Records a counter increment: `kr_obs::counter!("pool.steal", 1);`
/// or, labelled, `kr_obs::counter!("fed.frames_stale", n, "round" => r)`.
///
/// Compiles to a no-op unless the invoking crate's `obs` cargo feature
/// is enabled; records only while a [`Recorder`] is installed.
#[macro_export]
macro_rules! counter {
    ($name:expr, $val:expr) => {
        $crate::__record_int!(record_counter, $name, $val)
    };
    ($name:expr, $val:expr, $key:expr => $lv:expr) => {
        $crate::__record_int!(record_counter, $name, $val, $key => $lv)
    };
}

/// Records one histogram sample into the fixed power-of-two buckets:
/// `kr_obs::hist!("pool.queue_depth", n_jobs);`.
///
/// Compiles to a no-op unless the invoking crate's `obs` cargo feature
/// is enabled; records only while a [`Recorder`] is installed.
#[macro_export]
macro_rules! hist {
    ($name:expr, $val:expr) => {
        $crate::__record_int!(record_hist, $name, $val)
    };
    ($name:expr, $val:expr, $key:expr => $lv:expr) => {
        $crate::__record_int!(record_hist, $name, $val, $key => $lv)
    };
}

/// Records a float gauge reading:
/// `kr_obs::gauge!("stream.batch_inertia", inertia);`.
///
/// Compiles to a no-op unless the invoking crate's `obs` cargo feature
/// is enabled; records only while a [`Recorder`] is installed.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $val:expr) => {{
        #[cfg(feature = "obs")]
        {
            static __KR_OBS_NAME: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            $crate::rt::record_gauge(
                *__KR_OBS_NAME.get_or_init(|| $crate::intern($name)),
                ($val) as f64,
                $crate::NO_LABEL,
                0,
            );
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = || ($name, $val);
        }
    }};
}

/// Implementation detail of [`counter!`] and [`hist!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __record_int {
    ($fn:ident, $name:expr, $val:expr) => {{
        #[cfg(feature = "obs")]
        {
            static __KR_OBS_NAME: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            $crate::rt::$fn(
                *__KR_OBS_NAME.get_or_init(|| $crate::intern($name)),
                ($val) as u64,
                $crate::NO_LABEL,
                0,
            );
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = || ($name, $val);
        }
    }};
    ($fn:ident, $name:expr, $val:expr, $key:expr => $lv:expr) => {{
        #[cfg(feature = "obs")]
        {
            static __KR_OBS_NAME: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            static __KR_OBS_KEY: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            $crate::rt::$fn(
                *__KR_OBS_NAME.get_or_init(|| $crate::intern($name)),
                ($val) as u64,
                *__KR_OBS_KEY.get_or_init(|| $crate::intern($key)),
                ($lv) as u64,
            );
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = || ($name, $val, $key, $lv);
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    // Recorder installs are process-global; serialize the tests that
    // install one so `cargo test`'s default parallelism cannot
    // interleave generations mid-assertion.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn counter(name: &'static str, v: u64) {
        rt::record_counter(intern(name), v, NO_LABEL, 0);
    }

    #[test]
    fn disabled_by_default_and_after_drop() {
        let _guard = lock();
        counter("test.disabled", 1);
        let recorder = Recorder::install_virtual();
        counter("test.enabled", 2);
        let snap = recorder.snapshot();
        assert_eq!(snap.counter_total("test.disabled"), 0);
        assert_eq!(snap.counter_total("test.enabled"), 2);
        drop(recorder);
        counter("test.after", 3);
        let recorder = Recorder::install_virtual();
        assert!(recorder.snapshot().is_empty(), "old events must not leak");
    }

    #[test]
    fn multi_producer_drain_collects_every_thread() {
        let _guard = lock();
        let recorder = Recorder::install_virtual();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        counter("test.mp", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = recorder.snapshot();
        assert_eq!(snap.counter_total("test.mp"), 400);
        assert_eq!(snap.dropped, 0);
        // Four producer threads registered four distinct workers (the
        // main thread recorded nothing).
        let workers: std::collections::BTreeSet<u32> =
            snap.events.iter().map(|e| e.worker).collect();
        assert_eq!(workers.len(), 4);
        // VirtualClock timestamps are a total order: sorted and unique.
        for w in snap.events.windows(2) {
            assert!(w[1].ts > w[0].ts);
        }
        // Draining is consuming.
        assert!(recorder.snapshot().is_empty());
    }

    #[test]
    fn overflow_is_counted_not_blocking() {
        let _guard = lock();
        let recorder = Recorder::install_virtual();
        // One thread, one ring: push well past RING_CAPACITY.
        for _ in 0..(ring::RING_CAPACITY + 500) {
            counter("test.overflow", 1);
        }
        let snap = recorder.snapshot();
        assert_eq!(snap.len(), ring::RING_CAPACITY);
        assert_eq!(snap.dropped, 500);
        // The drop count was taken with the snapshot.
        assert_eq!(recorder.snapshot().dropped, 0);
    }

    #[test]
    fn spans_nest_and_measure_ticks() {
        let _guard = lock();
        let recorder = Recorder::install_virtual();
        {
            let _outer = SpanGuard::enter(intern("test.outer"), NO_LABEL, 0);
            let _inner = SpanGuard::enter(intern("test.inner"), intern("i"), 7);
            counter("test.inside", 1);
        }
        let snap = recorder.snapshot();
        let durations = snap.span_durations("test.inner");
        assert_eq!(durations.len(), 1);
        // enter(outer)=1, enter(inner)=2, counter=3, exit(inner)=4:
        // two ticks elapsed inside the inner span.
        assert_eq!(durations[0], 2);
        assert_eq!(snap.span_durations("test.outer"), vec![4]);
        let inner_exit = snap
            .events
            .iter()
            .find(|e| e.kind == EventKind::SpanExit && e.name == "test.inner")
            .unwrap();
        let inner_enter = snap
            .events
            .iter()
            .find(|e| e.kind == EventKind::SpanEnter && e.name == "test.inner")
            .unwrap();
        assert_eq!(inner_enter.span, inner_exit.span);
        assert_ne!(inner_enter.span, 0);
        assert_eq!(inner_exit.label, Some(("i".to_string(), 7)));
    }

    #[test]
    fn trace_file_writes_on_drop() {
        let _guard = lock();
        let dir = std::env::temp_dir().join("kr_obs_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let trace = TraceFile {
                recorder: Some(Recorder::install_virtual()),
                path: path.clone(),
            };
            counter("test.trace_file", 5);
            drop(trace);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let snap = Snapshot::parse_jsonl(&text).unwrap();
        assert_eq!(snap.counter_total("test.trace_file"), 5);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn macros_compile_to_noops_without_the_feature() {
        // This crate does not define an `obs` feature, so expansion
        // takes the off branch: no events, and `span!` yields the
        // zero-sized token.
        let _guard = lock();
        let recorder = Recorder::install_virtual();
        let noop: NoopSpan = crate::span!("test.noop");
        let _: NoopSpan = crate::span!("test.noop", "l" => 3u64);
        crate::counter!("test.noop", 1);
        crate::hist!("test.noop", 2);
        crate::gauge!("test.noop", 3.0);
        assert_eq!(std::mem::size_of_val(&noop), 0);
        assert!(recorder.snapshot().is_empty());
    }
}
