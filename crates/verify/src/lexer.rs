//! A minimal hand-rolled Rust lexer for the lint pass.
//!
//! The rules in [`crate::rules`] only need to see *code* tokens — words
//! and punctuation with line numbers — plus the comments themselves (for
//! the `// SAFETY:` check). Everything else is about not being fooled:
//! string literals (including raw strings with any number of `#` guards
//! and byte-string prefixes), nested block comments, character literals
//! vs. lifetimes. The workspace is offline-vendored, so this is written
//! against `std` alone rather than pulling in `syn` or `proc-macro2`.
//!
//! The lexer is intentionally lossy where the rules do not care: numeric
//! literals, identifiers and keywords all come out as "word" tokens, and
//! multi-character operators arrive as single-character punctuation
//! tokens (`::` is two `:` tokens). Rule patterns match on short token
//! sequences, so this is enough.

/// One code token: a word (identifier / keyword / number) or a single
/// punctuation character, with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token text; words keep their full run, punctuation is one char.
    pub text: String,
    /// 1-based source line of the token start.
    pub line: u32,
}

/// One comment (line or block), with its covered line range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Raw comment text including the `//` / `/*` markers.
    pub text: String,
}

/// Token and comment streams for one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens outside comments and string/char literals.
    pub toks: Vec<Tok>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

fn is_word(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src`, returning code tokens and comments. Never fails: on
/// malformed input (unterminated strings or comments) it consumes to end
/// of file, which is the right behavior for a linter.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Lexed::default();

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also doc comments `///` and `//!`).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                end_line: line,
                text: b[start..i].iter().collect(),
            });
            continue;
        }
        // Block comment, nested per Rust's rules.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                end_line: line,
                text: b[start..i.min(n)].iter().collect(),
            });
            continue;
        }
        // Word run — identifiers, keywords, numbers. String prefixes
        // (`r`, `b`, `br`) are recognized here: a word that is exactly a
        // prefix and is followed by `"` or `#` starts a (raw) string.
        if is_word(c) {
            let start = i;
            while i < n && is_word(b[i]) {
                i += 1;
            }
            let word: String = b[start..i].iter().collect();
            if i < n {
                let next = b[i];
                let rawish = word == "r" || word == "br";
                if rawish && (next == '"' || next == '#') {
                    if let Some((ni, nl)) = scan_raw_string(&b, i, line) {
                        i = ni;
                        line = nl;
                        continue;
                    }
                    // `r#ident` raw identifier: fall through, push `r`,
                    // the `#` and identifier lex as ordinary tokens.
                }
                if word == "b" && next == '"' {
                    let (ni, nl) = scan_cooked_string(&b, i, line);
                    i = ni;
                    line = nl;
                    continue;
                }
            }
            out.toks.push(Tok { text: word, line });
            continue;
        }
        // Cooked string literal.
        if c == '"' {
            let (ni, nl) = scan_cooked_string(&b, i, line);
            i = ni;
            line = nl;
            continue;
        }
        // Character literal vs. lifetime.
        if c == '\'' {
            if i + 1 < n && b[i + 1] == '\\' {
                // Escaped char literal: skip to the closing quote.
                i += 2;
                while i < n && b[i] != '\'' {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i += 1;
                continue;
            }
            if i + 2 < n && is_word(b[i + 1]) && b[i + 2] != '\'' {
                // Lifetime: `'ident` with no closing quote.
                i += 1;
                while i < n && is_word(b[i]) {
                    i += 1;
                }
                continue;
            }
            // Plain char literal `'x'` (possibly multi-byte scalar).
            i += 2;
            while i < n && b[i] != '\'' {
                if b[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i += 1;
            continue;
        }
        // Single punctuation character.
        out.toks.push(Tok {
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Scans a cooked (escaped) string starting at the opening `"` at `i`.
/// Returns the index one past the closing quote and the updated line.
fn scan_cooked_string(b: &[char], mut i: usize, mut line: u32) -> (usize, u32) {
    debug_assert_eq!(b[i], '"');
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => {
                i += 1;
                break;
            }
            '\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, line)
}

/// Scans a raw string whose guard (`#...#"` or `"`) starts at `i`.
/// Returns `None` if this is not actually a raw string (e.g. `r#ident`).
fn scan_raw_string(b: &[char], start: usize, start_line: u32) -> Option<(usize, u32)> {
    let mut i = start;
    let mut line = start_line;
    let mut hashes = 0usize;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != '"' {
        return None; // raw identifier like `r#match`
    }
    i += 1;
    while i < b.len() {
        if b[i] == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b[i] == '"' {
            let mut k = i + 1;
            let mut h = 0usize;
            while k < b.len() && h < hashes && b[k] == '#' {
                h += 1;
                k += 1;
            }
            if h == hashes {
                return Some((k, line));
            }
        }
        i += 1;
    }
    Some((b.len(), line))
}

/// Returns `toks` with every `#[cfg(test)] mod <name> { ... }` region
/// removed. Rules about runtime behavior (hash iteration, wall-clock,
/// thread spawning) do not apply to test-only code; the unsafety rules
/// deliberately do *not* use this filter.
pub fn strip_test_mods(toks: &[Tok]) -> Vec<Tok> {
    let text = |i: usize| toks.get(i).map(|t| t.text.as_str());
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if text(i) == Some("#") && matches_cfg_test(toks, i) {
            if let Some(end) = skip_cfg_test_mod(toks, i) {
                i = end;
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Does `toks[i..]` start with exactly `#[cfg(test)]`?
fn matches_cfg_test(toks: &[Tok], i: usize) -> bool {
    const PAT: [&str; 7] = ["#", "[", "cfg", "(", "test", ")", "]"];
    PAT.iter()
        .enumerate()
        .all(|(k, p)| toks.get(i + k).map(|t| t.text.as_str()) == Some(*p))
}

/// Starting at a `#[cfg(test)]` attribute, skips any further attributes
/// and then a `mod <name> { ... }` body; returns the index one past the
/// closing brace, or `None` if the attribute precedes something else.
fn skip_cfg_test_mod(toks: &[Tok], i: usize) -> Option<usize> {
    let mut j = i + 7; // past #[cfg(test)]
                       // Skip any additional attributes, bracket-balanced.
    while toks.get(j).map(|t| t.text.as_str()) == Some("#")
        && toks.get(j + 1).map(|t| t.text.as_str()) == Some("[")
    {
        let mut depth = 0usize;
        j += 1;
        loop {
            match toks.get(j).map(|t| t.text.as_str()) {
                Some("[") => depth += 1,
                Some("]") => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                None => return None,
                _ => {}
            }
            j += 1;
        }
    }
    if toks.get(j).map(|t| t.text.as_str()) != Some("mod") {
        return None;
    }
    j += 1; // mod name
    j += 1; // expect `{`
    if toks.get(j).map(|t| t.text.as_str()) != Some("{") {
        return None; // `mod tests;` file form — nothing inline to skip
    }
    let mut depth = 0usize;
    loop {
        match toks.get(j).map(|t| t.text.as_str()) {
            Some("{") => depth += 1,
            Some("}") => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            None => return None,
            _ => {}
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = words(r#"let x = "unsafe { HashMap }"; foo();"#);
        assert!(!toks.iter().any(|t| t == "unsafe" || t == "HashMap"));
        assert!(toks.iter().any(|t| t == "foo"));
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = "let s = r#\"has \"quotes\" and unsafe\"#; bar();";
        let toks = words(src);
        assert!(!toks.iter().any(|t| t == "unsafe"));
        assert!(toks.iter().any(|t| t == "bar"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = words(r##"let s = b"unsafe"; let t = br#"HashMap"#; ok();"##);
        assert!(!toks.iter().any(|t| t == "unsafe" || t == "HashMap"));
        assert!(toks.iter().any(|t| t == "ok"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unsafe */ still comment */ real();";
        let lexed = lex(src);
        assert!(!lexed.toks.iter().any(|t| t.text == "unsafe"));
        assert!(lexed.toks.iter().any(|t| t.text == "real"));
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // If 'a were lexed as an open char literal the rest of the file
        // would be swallowed.
        let toks = words("fn f<'a>(x: &'a str) { g(); } let c = 'q'; h();");
        assert!(toks.iter().any(|t| t == "g"));
        assert!(toks.iter().any(|t| t == "h"));
        assert!(!toks.iter().any(|t| t == "q")); // char body is not a token
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lexed = lex("a\nb\n  c");
        let lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn raw_identifier_is_not_a_string() {
        let toks = words("let r#match = 1; tail();");
        assert!(toks.iter().any(|t| t == "tail"));
    }

    #[test]
    fn cfg_test_mods_are_stripped() {
        let src =
            "fn live() {} #[cfg(test)] mod tests { use x; fn t() { h.iter(); } } fn after() {}";
        let lexed = lex(src);
        let stripped = strip_test_mods(&lexed.toks);
        let texts: Vec<&str> = stripped.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"live"));
        assert!(texts.contains(&"after"));
        assert!(!texts.contains(&"iter"));
    }
}
