//! `kr-verify check-pool`: drive the schedule-exploring model checker
//! in [`kr_linalg::model`] over a fixed set of thread-pool scenarios.
//!
//! Each scenario is a closure the explorer re-executes under every
//! bounded-preemption schedule it can reach, asserting the pool's
//! contracts from inside: every chunk runs exactly once, never after
//! `scope_chunks` returns (the lifetime-erasure soundness condition),
//! panics propagate to the submitter and leave the pool usable, nested
//! regions complete, and the park/wake protocol loses no wakeups across
//! back-to-back regions.
//!
//! The final scenario is a *self-test*: two controlled threads perform
//! a textbook load/yield/store lost-update race that a correct explorer
//! **must** be able to schedule. If no interleaving trips that
//! assertion, the checker's coverage is broken and the command fails —
//! green runs are only meaningful if the tool can still find red.
//!
//! Requires `cfg(kr_model)` (build with `KR_MODEL=1`); otherwise the
//! command explains how to rebuild and exits with a usage error.

use kr_linalg::model::{self, ModelConfig, Op, Report};
use kr_linalg::ThreadPool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// CLI options for `check-pool`.
#[derive(Debug, Clone)]
pub struct Options {
    /// Seed for the explorer's branch order.
    pub seed: u64,
    /// Minimum total distinct schedules across the pool scenarios.
    pub min_schedules: usize,
    /// Preemption bound per schedule.
    pub preemptions: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            seed: 0xC1A0,
            min_schedules: 1000,
            preemptions: 2,
        }
    }
}

struct Scenario {
    name: &'static str,
    what: &'static str,
    workers: usize,
    extra_threads: usize,
    max_schedules: usize,
    /// Self-test scenarios *must* produce failures; their failures do
    /// not fail the run, their absence does. Their schedules also do
    /// not count toward `min_schedules`.
    expect_failures: bool,
    run: fn(),
}

/// Chunks run exactly once each, cover everything, and never execute
/// after `scope_chunks` returns — the condition the `RawFn` lifetime
/// erasure in the pool depends on.
fn s_basic() {
    let pool = ThreadPool::new(2);
    let ran: Vec<AtomicBool> = (0..4).map(|_| AtomicBool::new(false)).collect();
    let total = AtomicUsize::new(0);
    let closed = AtomicBool::new(false);
    pool.scope_chunks(4, 1, &|s, e| {
        assert!(
            !closed.load(Ordering::SeqCst),
            "chunk ran after scope_chunks returned"
        );
        assert!(!ran[s].swap(true, Ordering::SeqCst), "chunk {s} ran twice");
        total.fetch_add(e - s, Ordering::SeqCst);
    });
    closed.store(true, Ordering::SeqCst);
    assert_eq!(total.load(Ordering::SeqCst), 4, "chunks lost or duplicated");
}

/// A panicking chunk reaches the submitter as a panic, the remaining
/// chunks still complete, and the pool survives for a second region.
fn s_panic() {
    let pool = ThreadPool::new(2);
    let survivors = AtomicUsize::new(0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.scope_chunks(3, 1, &|s, _| {
            if s == 1 {
                panic!("injected chunk panic");
            }
            survivors.fetch_add(1, Ordering::SeqCst);
        });
    }));
    assert!(result.is_err(), "chunk panic must reach the submitter");
    assert_eq!(
        survivors.load(Ordering::SeqCst),
        2,
        "non-panicking chunks must still run"
    );
    let total = AtomicUsize::new(0);
    pool.scope_chunks(6, 2, &|s, e| {
        total.fetch_add(e - s, Ordering::SeqCst);
    });
    assert_eq!(total.load(Ordering::SeqCst), 6, "pool unusable after panic");
}

/// A region opened from inside a worker chunk completes even on a
/// single-worker pool, because the opening thread drains jobs itself.
fn s_nested() {
    let pool = ThreadPool::new(1);
    let total = AtomicUsize::new(0);
    pool.scope_chunks(2, 1, &|_, _| {
        pool.scope_chunks(2, 1, &|s, e| {
            total.fetch_add(e - s, Ordering::SeqCst);
        });
    });
    assert_eq!(total.load(Ordering::SeqCst), 4, "nested region lost chunks");
}

/// Two back-to-back regions: after the first, workers park; the second
/// submission's wake must not be lost in the park/wake race window.
fn s_park_wake() {
    let pool = ThreadPool::new(2);
    for round in 0..2 {
        let total = AtomicUsize::new(0);
        pool.scope_chunks(3, 1, &|s, e| {
            total.fetch_add(e - s, Ordering::SeqCst);
        });
        assert_eq!(
            total.load(Ordering::SeqCst),
            3,
            "round {round} lost a wakeup"
        );
    }
}

/// Detector self-test: a deliberate lost-update race between two
/// controlled threads. Some schedule must interleave the load/store
/// pairs and fail the final assertion; `run` checks the failure count
/// is non-zero.
fn s_selftest_racy() {
    let counter = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..2)
        .map(|j| {
            let counter = Arc::clone(&counter);
            model::spawn_controlled(j, move || {
                let v = counter.load(Ordering::SeqCst);
                model::yield_point(Op::User);
                counter.store(v + 1, Ordering::SeqCst);
            })
        })
        .collect();
    for h in handles {
        model::external_block(|| h.join()).expect("extra thread");
    }
    assert_eq!(
        counter.load(Ordering::SeqCst),
        2,
        "lost update (the explorer is SUPPOSED to reach this)"
    );
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "push-steal-basic",
        what: "4 chunks on 2 workers: exactly-once, coverage, no run-after-return",
        workers: 2,
        extra_threads: 0,
        max_schedules: 500,
        expect_failures: false,
        run: s_basic,
    },
    Scenario {
        name: "panic-propagation",
        what: "panicking chunk: payload rethrown, region completes, pool survives",
        workers: 2,
        extra_threads: 0,
        max_schedules: 400,
        expect_failures: false,
        run: s_panic,
    },
    Scenario {
        name: "nested-regions",
        what: "region inside a chunk on 1 worker: submitter participation",
        workers: 1,
        extra_threads: 0,
        max_schedules: 200,
        expect_failures: false,
        run: s_nested,
    },
    Scenario {
        name: "park-wake",
        what: "two sequential regions: no lost wakeup across the park window",
        workers: 2,
        extra_threads: 0,
        max_schedules: 400,
        expect_failures: false,
        run: s_park_wake,
    },
    Scenario {
        name: "selftest-lost-update",
        what: "seeded load/store race the explorer MUST find (detector power)",
        workers: 0,
        extra_threads: 2,
        max_schedules: 64,
        expect_failures: true,
        run: s_selftest_racy,
    },
];

fn explore_scenario(sc: &Scenario, opts: &Options) -> Result<Report, String> {
    let cfg = ModelConfig {
        workers: sc.workers,
        extra_threads: sc.extra_threads,
        preemption_bound: opts.preemptions,
        max_schedules: sc.max_schedules,
        seed: opts.seed,
        ..ModelConfig::default()
    };
    model::explore(&cfg, sc.run)
}

/// Runs every scenario; returns the process exit code.
pub fn run(opts: &Options) -> u8 {
    if !model::enabled() {
        eprintln!(
            "check-pool: kr-linalg was built without the model-checking \
             instrumentation.\nRebuild with the KR_MODEL env var set:\n\n    \
             KR_MODEL=1 cargo run -p kr-verify -- check-pool\n"
        );
        return 2;
    }

    // The explorer intentionally drives scenarios into panics (that is
    // how it reports a bad schedule); silence the default hook so a
    // thousand executions do not print a thousand backtraces. Failure
    // payloads are captured and reported by the explorer itself.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut pool_distinct = 0usize;
    let mut failed = false;
    println!(
        "check-pool: exploring {} scenarios (seed {:#x}, preemption bound {})",
        SCENARIOS.len(),
        opts.seed,
        opts.preemptions
    );
    for sc in SCENARIOS {
        let report = match explore_scenario(sc, opts) {
            Ok(r) => r,
            Err(e) => {
                std::panic::set_hook(prev_hook);
                eprintln!("check-pool: {}: {e}", sc.name);
                return 2;
            }
        };
        let status = if sc.expect_failures {
            if report.failures.is_empty() {
                failed = true;
                "SELF-TEST FAILED (race not found)"
            } else {
                "ok (race found, as required)"
            }
        } else if report.failures.is_empty() && !report.hung {
            pool_distinct += report.distinct;
            "ok"
        } else {
            failed = true;
            "FAILED"
        };
        println!(
            "  {:<22} {:>4} runs, {:>4} distinct, depth<={:<3} {} diverged, digest {:016x}  {}{}",
            sc.name,
            report.executions,
            report.distinct,
            report.max_depth,
            report.divergences,
            report.digest,
            status,
            if report.exhausted { " [exhausted]" } else { "" },
        );
        println!("      {}", sc.what);
        if !sc.expect_failures {
            for f in report.failures.iter().take(3) {
                eprintln!(
                    "    failing schedule {:?}\n      {}",
                    f.schedule,
                    f.message.lines().next().unwrap_or("")
                );
            }
        }
    }
    std::panic::set_hook(prev_hook);

    println!(
        "check-pool: {pool_distinct} distinct pool schedules explored (minimum {})",
        opts.min_schedules
    );
    if pool_distinct < opts.min_schedules {
        eprintln!(
            "check-pool: coverage shortfall: {pool_distinct} < {}",
            opts.min_schedules
        );
        failed = true;
    }
    u8::from(failed)
}
