//! Lint driver: file discovery, rule execution, waiver filtering.

use std::io;
use std::path::{Path, PathBuf};

use crate::config::{Config, Waiver};
use crate::lexer::lex;
use crate::rules::{run_all, Diag};

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations that survived waiver filtering — these fail the run.
    pub diags: Vec<Diag>,
    /// Violations suppressed by a `verify.toml` waiver.
    pub waived: Vec<Diag>,
    /// Waivers that matched nothing; stale entries worth cleaning up.
    pub unused_waivers: Vec<Waiver>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Did the tree pass?
    pub fn clean(&self) -> bool {
        self.diags.is_empty()
    }
}

/// Lints in-memory `(path, contents)` pairs. This is the testable core:
/// the fixture tests feed snippets through here without touching disk.
pub fn lint_files(files: &[(String, String)], cfg: &Config) -> LintReport {
    let mut report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    for (path, contents) in files {
        let lexed = lex(contents);
        for diag in run_all(path, &lexed, cfg) {
            if cfg.is_waived(diag.rule, path) {
                report.waived.push(diag);
            } else {
                report.diags.push(diag);
            }
        }
    }
    report.unused_waivers = cfg
        .waivers
        .iter()
        .filter(|w| {
            !report
                .waived
                .iter()
                .any(|d| d.rule == w.rule && d.path == w.path)
        })
        .cloned()
        .collect();
    report
        .diags
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
}

/// Lints every `.rs` file under `src/` and `crates/*/src/` below `root`.
pub fn lint_tree(root: &Path, cfg: &Config) -> io::Result<LintReport> {
    let mut files = Vec::new();
    let mut dirs: Vec<PathBuf> = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path().join("src"))
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        dirs.extend(entries);
    }
    for dir in dirs {
        collect_rs_files(&dir, &mut files)?;
    }
    files.sort();
    let mut pairs = Vec::with_capacity(files.len());
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        pairs.push((rel, std::fs::read_to_string(&f)?));
    }
    Ok(lint_files(&pairs, cfg))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root by walking up from `start` looking for
/// `verify.toml`; falls back to the compile-time manifest location.
pub fn find_root(start: &Path) -> PathBuf {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("verify.toml").is_file() {
            return dir;
        }
        cur = dir.parent().map(|p| p.to_path_buf());
    }
    // crates/verify -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/verify")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waivers_suppress_and_track_usage() {
        let cfg = crate::config::parse(
            r#"
[rule.hash-collections]
crates = ["crates/num"]

[[waiver]]
rule = "hash-collections"
path = "crates/num/src/a.rs"
justification = "lookup-only"

[[waiver]]
rule = "hash-collections"
path = "crates/num/src/untouched.rs"
justification = "stale entry"
"#,
        )
        .unwrap();
        let files = vec![(
            "crates/num/src/a.rs".to_string(),
            "use std::collections::HashMap;".to_string(),
        )];
        let report = lint_files(&files, &cfg);
        assert!(report.clean());
        assert_eq!(report.waived.len(), 1);
        assert_eq!(report.unused_waivers.len(), 1);
        assert_eq!(report.unused_waivers[0].path, "crates/num/src/untouched.rs");
    }
}
