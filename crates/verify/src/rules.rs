//! The named lint rules enforcing the workspace's determinism and
//! unsafety contracts.
//!
//! Every rule has a stable kebab-case name (used in diagnostics and in
//! `verify.toml` waivers) and produces `file:line` diagnostics. The
//! contract each rule enforces is documented on its function; the README
//! "Correctness tooling" section gives the narrative version.

use crate::config::Config;
use crate::lexer::{strip_test_mods, Comment, Lexed, Tok};

/// One diagnostic: a rule violation at `path:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule name (matches `verify.toml` waiver `rule` keys).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// Rule names, in the order rules run. Kept public so the CLI can list
/// them and the tests can assert exhaustiveness.
pub const RULE_NAMES: [&str; 9] = [
    "unsafe-allowlist",
    "safety-comment",
    "forbid-unsafe",
    "hash-collections",
    "thread-spawn",
    "wall-clock",
    "float-fold",
    "missing-docs-header",
    "obs-macro-only",
];

/// Does `path` live in one of the configured files/directories?
/// Entries match exactly or as a directory prefix.
fn in_list(path: &str, list: &[String]) -> bool {
    list.iter().any(|entry| {
        let entry = entry.trim_end_matches('/');
        path == entry || path.starts_with(&format!("{entry}/"))
    })
}

fn tok_text(toks: &[Tok], i: usize) -> &str {
    toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

/// Matches `toks[i..]` against a literal token sequence.
fn seq(toks: &[Tok], i: usize, pat: &[&str]) -> bool {
    pat.iter()
        .enumerate()
        .all(|(k, p)| tok_text(toks, i + k) == *p)
}

/// Is the crate root header `#![<attr>(<arg>)]` present anywhere?
fn has_inner_attr(toks: &[Tok], attr: &str, arg: &str) -> bool {
    (0..toks.len()).any(|i| seq(toks, i, &["#", "!", "[", attr, "(", arg, ")", "]"]))
}

/// Runs every rule over one lexed file, without waiver filtering.
pub fn run_all(path: &str, lexed: &Lexed, cfg: &Config) -> Vec<Diag> {
    let stripped = strip_test_mods(&lexed.toks);
    let mut diags = Vec::new();
    diags.extend(unsafe_allowlist(path, &lexed.toks, cfg));
    diags.extend(safety_comment(path, &lexed.toks, &lexed.comments));
    diags.extend(forbid_unsafe(path, &lexed.toks, cfg));
    diags.extend(hash_collections(path, &stripped, cfg));
    diags.extend(thread_spawn(path, &stripped, cfg));
    diags.extend(wall_clock(path, &stripped, cfg));
    diags.extend(float_fold(path, &stripped, cfg));
    diags.extend(missing_docs_header(path, &lexed.toks));
    diags.extend(obs_macro_only(path, &stripped, cfg));
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}

/// `unsafe-allowlist` — `unsafe` may appear only in the modules whose
/// soundness arguments the project actually maintains (the pool's
/// lifetime erasure, the disjoint-chunk slicing, the counting
/// allocator). Everything else is compiler-enforced via
/// `#![forbid(unsafe_code)]`, and this rule catches the gap: a new
/// module in an allowlisted *crate* still may not use `unsafe`.
fn unsafe_allowlist(path: &str, toks: &[Tok], cfg: &Config) -> Vec<Diag> {
    if in_list(path, cfg.rule_list("unsafe-allowlist", "allow")) {
        return Vec::new();
    }
    let mut lines_seen = Vec::new();
    let mut diags = Vec::new();
    for t in toks.iter().filter(|t| t.text == "unsafe") {
        if lines_seen.contains(&t.line) {
            continue;
        }
        lines_seen.push(t.line);
        diags.push(Diag {
            path: path.to_string(),
            line: t.line,
            rule: "unsafe-allowlist",
            msg: "`unsafe` outside the allowlisted modules; move the code behind an \
                  allowlisted module or extend [rule.unsafe-allowlist] with a soundness story"
                .to_string(),
        });
    }
    diags
}

/// `safety-comment` — every line containing an `unsafe` token must be
/// immediately preceded by a comment block containing a line that starts
/// with `SAFETY:` (after the `//`/`///`/`//!` marker). The block must
/// end on the line directly above the `unsafe`; chained comment lines
/// extend it upward.
fn safety_comment(path: &str, toks: &[Tok], comments: &[Comment]) -> Vec<Diag> {
    let mut diags = Vec::new();
    let mut lines_seen = Vec::new();
    for t in toks.iter().filter(|t| t.text == "unsafe") {
        if lines_seen.contains(&t.line) {
            continue;
        }
        lines_seen.push(t.line);
        if !has_safety_block(comments, t.line) {
            diags.push(Diag {
                path: path.to_string(),
                line: t.line,
                rule: "safety-comment",
                msg: "`unsafe` without an immediately preceding `// SAFETY:` comment \
                      documenting why this is sound"
                    .to_string(),
            });
        }
    }
    diags
}

/// Walks the contiguous comment block ending on `line - 1` and checks it
/// for a `SAFETY:` marker.
fn has_safety_block(comments: &[Comment], line: u32) -> bool {
    let mut want_end = line.saturating_sub(1);
    loop {
        let Some(c) = comments.iter().find(|c| c.end_line == want_end) else {
            return false;
        };
        let safety = c.text.lines().any(|l| {
            l.trim_start()
                .trim_start_matches('/')
                .trim_start_matches('!')
                .trim_start_matches('*')
                .trim_start()
                .starts_with("SAFETY:")
        });
        if safety {
            return true;
        }
        if c.line == 0 {
            return false;
        }
        want_end = c.line - 1; // keep walking up the comment block
        if want_end == 0 {
            return false;
        }
    }
}

/// `forbid-unsafe` — the configured crate roots (every crate with no
/// sanctioned unsafe code) must carry `#![forbid(unsafe_code)]`, so the
/// lint's allowlist is also compiler-enforced.
fn forbid_unsafe(path: &str, toks: &[Tok], cfg: &Config) -> Vec<Diag> {
    if !cfg
        .rule_list("forbid-unsafe", "roots")
        .iter()
        .any(|r| r == path)
    {
        return Vec::new();
    }
    if has_inner_attr(toks, "forbid", "unsafe_code") {
        return Vec::new();
    }
    vec![Diag {
        path: path.to_string(),
        line: 1,
        rule: "forbid-unsafe",
        msg: "crate root must declare `#![forbid(unsafe_code)]` (it is listed in \
              [rule.forbid-unsafe] roots)"
            .to_string(),
    }]
}

/// `hash-collections` — `HashMap`/`HashSet` are banned in the numeric
/// crates: their iteration order is nondeterministic (and deliberately
/// randomized), which breaks the bitwise-determinism contract the
/// moment anyone iterates one into a float accumulation or an output
/// ordering. Use `BTreeMap`/`BTreeSet` or a sorted `Vec`. Lookup-only
/// uses may be waived in `verify.toml` with a justification.
fn hash_collections(path: &str, toks: &[Tok], cfg: &Config) -> Vec<Diag> {
    if !in_list(path, cfg.rule_list("hash-collections", "crates")) {
        return Vec::new();
    }
    let mut diags = Vec::new();
    let mut lines_seen = Vec::new();
    for t in toks
        .iter()
        .filter(|t| t.text == "HashMap" || t.text == "HashSet")
    {
        if lines_seen.contains(&t.line) {
            continue;
        }
        lines_seen.push(t.line);
        diags.push(Diag {
            path: path.to_string(),
            line: t.line,
            rule: "hash-collections",
            msg: format!(
                "`{}` in a numeric crate: iteration order is nondeterministic and \
                 breaks the bitwise-determinism contract; use a BTree/sorted collection \
                 or add a justified waiver for lookup-only use",
                t.text
            ),
        });
    }
    diags
}

/// `thread-spawn` — all parallelism flows through `ExecCtx` and the
/// work-stealing pool; raw `std::thread` spawning is allowed only in the
/// pool itself and the federated wire transports.
fn thread_spawn(path: &str, toks: &[Tok], cfg: &Config) -> Vec<Diag> {
    if in_list(path, cfg.rule_list("thread-spawn", "allow")) {
        return Vec::new();
    }
    let mut diags = Vec::new();
    for i in 0..toks.len() {
        if tok_text(toks, i) == "thread"
            && seq(toks, i + 1, &[":", ":"])
            && matches!(tok_text(toks, i + 3), "spawn" | "Builder" | "scope")
        {
            diags.push(Diag {
                path: path.to_string(),
                line: toks[i].line,
                rule: "thread-spawn",
                msg: format!(
                    "`thread::{}` outside the execution layer: route parallelism \
                     through `ExecCtx` so chunk geometry stays deterministic",
                    tok_text(toks, i + 3)
                ),
            });
        }
    }
    diags
}

/// `wall-clock` — `Instant::now`/`SystemTime` in library crates smuggle
/// timing into results; measurement belongs to kr-bench. Protocol-level
/// deadlines (the TCP transport) are waived with justification.
fn wall_clock(path: &str, toks: &[Tok], cfg: &Config) -> Vec<Diag> {
    if in_list(path, cfg.rule_list("wall-clock", "allow")) {
        return Vec::new();
    }
    let mut diags = Vec::new();
    for i in 0..toks.len() {
        let hit = if tok_text(toks, i) == "Instant"
            && seq(toks, i + 1, &[":", ":"])
            && tok_text(toks, i + 3) == "now"
        {
            Some("Instant::now")
        } else if tok_text(toks, i) == "SystemTime" {
            Some("SystemTime")
        } else {
            None
        };
        if let Some(what) = hit {
            diags.push(Diag {
                path: path.to_string(),
                line: toks[i].line,
                rule: "wall-clock",
                msg: format!(
                    "`{what}` in a library crate: wall-clock reads belong to kr-bench \
                     (or need a justified waiver for protocol deadlines)"
                ),
            });
        }
    }
    diags
}

/// `float-fold` — the hot-path kernel modules must do float reductions
/// through the fixed-order `reduce_chunks` helpers; raw
/// `.sum()`/`.fold()`/`.product()` chains there are where an unordered
/// reduction would silently slip in.
fn float_fold(path: &str, toks: &[Tok], cfg: &Config) -> Vec<Diag> {
    if !in_list(path, cfg.rule_list("float-fold", "hot_path")) {
        return Vec::new();
    }
    // `lane_fold` carve-out: lane-kernel modules whose determinism
    // contract *is* a fixed serial fold order (the 4-wide SIMD lane
    // combine and its ascending tail fold). Scoped per file; every
    // other rule still applies to them.
    if in_list(path, cfg.rule_list("float-fold", "lane_fold")) {
        return Vec::new();
    }
    let mut diags = Vec::new();
    for i in 0..toks.len() {
        if tok_text(toks, i) != "." {
            continue;
        }
        // `..` ranges produce adjacent dots; only match a lone dot.
        if i > 0 && tok_text(toks, i - 1) == "." {
            continue;
        }
        let name = tok_text(toks, i + 1);
        if matches!(name, "sum" | "fold" | "product") {
            diags.push(Diag {
                path: path.to_string(),
                line: toks[i + 1].line,
                rule: "float-fold",
                msg: format!(
                    "`.{name}(...)` in a hot-path module: float reductions here must \
                     go through the fixed-order `reduce_chunks` helpers (or carry a \
                     justified waiver for serial in-order folds)"
                ),
            });
        }
    }
    diags
}

/// `missing-docs-header` — every crate root keeps `#![warn(missing_docs)]`
/// so the CI doc gate (`RUSTDOCFLAGS=-D warnings`) stays meaningful.
fn missing_docs_header(path: &str, toks: &[Tok]) -> Vec<Diag> {
    let is_root = path == "src/lib.rs"
        || (path.starts_with("crates/")
            && path.ends_with("/src/lib.rs")
            && path.matches('/').count() == 3);
    if !is_root {
        return Vec::new();
    }
    if has_inner_attr(toks, "warn", "missing_docs") || has_inner_attr(toks, "deny", "missing_docs")
    {
        return Vec::new();
    }
    vec![Diag {
        path: path.to_string(),
        line: 1,
        rule: "missing-docs-header",
        msg: "crate root must declare `#![warn(missing_docs)]` (the CI doc gate \
              depends on it)"
            .to_string(),
    }]
}

/// `obs-macro-only` — inside the instrumented crates, the only
/// sanctioned surface of kr-obs is its macros (`kr_obs::span!` /
/// `counter!` / `hist!` / `gauge!`). The macros carry the feature gate
/// and the `ENABLED` fast path; a direct `Recorder` / `Clock` call in
/// library code would bypass both and put observability on the numeric
/// path. Recorder handling belongs to the harness layer (tests,
/// examples, benches, kr-obs itself), none of which this rule covers.
fn obs_macro_only(path: &str, toks: &[Tok], cfg: &Config) -> Vec<Diag> {
    if !in_list(path, cfg.rule_list("obs-macro-only", "crates")) {
        return Vec::new();
    }
    let mut diags = Vec::new();
    let mut lines_seen = Vec::new();
    for i in 0..toks.len() {
        // A `kr_obs::<name>` path is fine only as a macro invocation
        // (`!` directly after the name); runtime items (Recorder,
        // rt::*, Clock impls) are flagged whether path-qualified or
        // imported by name.
        let hit = if tok_text(toks, i) == "kr_obs"
            && seq(toks, i + 1, &[":", ":"])
            && tok_text(toks, i + 4) != "!"
        {
            Some(format!("`kr_obs::{}`", tok_text(toks, i + 3)))
        } else if matches!(
            tok_text(toks, i),
            "Recorder" | "MonotonicClock" | "VirtualClock"
        ) {
            Some(format!("`{}`", tok_text(toks, i)))
        } else {
            None
        };
        let Some(what) = hit else { continue };
        if lines_seen.contains(&toks[i].line) {
            continue;
        }
        lines_seen.push(toks[i].line);
        diags.push(Diag {
            path: path.to_string(),
            line: toks[i].line,
            rule: "obs-macro-only",
            msg: format!(
                "{what} in an instrumented crate: kr-obs may only be reached through \
                 its macros (`kr_obs::span!`/`counter!`/`hist!`/`gauge!`) so the \
                 feature gate and ENABLED fast path cannot be bypassed; recorder and \
                 clock handling belongs to the harness layer"
            ),
        });
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn base_cfg() -> Config {
        crate::config::parse(
            r#"
[rule.unsafe-allowlist]
allow = ["ok/unsafe_ok.rs"]
[rule.hash-collections]
crates = ["crates/num"]
[rule.thread-spawn]
allow = ["ok/pool.rs"]
[rule.wall-clock]
allow = ["crates/bench"]
[rule.float-fold]
hot_path = ["crates/num/src/kernel.rs", "crates/num/src/simd.rs"]
lane_fold = ["crates/num/src/simd.rs"]
[rule.forbid-unsafe]
roots = ["crates/num/src/lib.rs"]
[rule.obs-macro-only]
crates = ["crates/num"]
"#,
        )
        .unwrap()
    }

    fn diags_for(path: &str, src: &str) -> Vec<Diag> {
        run_all(path, &lex(src), &base_cfg())
    }

    #[test]
    fn unsafe_outside_allowlist_flagged_once_per_line() {
        let d = diags_for("crates/num/src/a.rs", "fn f() { unsafe { g() } }");
        assert!(d
            .iter()
            .any(|d| d.rule == "unsafe-allowlist" && d.line == 1));
    }

    #[test]
    fn safety_comment_chain_is_accepted() {
        let src = "// SAFETY: top\n// continues here\nunsafe impl Send for X {}\n";
        let d = diags_for("ok/unsafe_ok.rs", src);
        assert!(d.iter().all(|d| d.rule != "safety-comment"), "{d:?}");
    }

    #[test]
    fn hash_in_numeric_crate_flagged() {
        let d = diags_for("crates/num/src/a.rs", "use std::collections::HashMap;\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "hash-collections");
    }

    #[test]
    fn hash_outside_numeric_crates_ok() {
        let d = diags_for("crates/other/src/a.rs", "use std::collections::HashMap;\n");
        assert!(d.is_empty());
    }

    #[test]
    fn float_fold_only_in_hot_path() {
        let src = "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }";
        assert!(diags_for("crates/num/src/kernel.rs", src)
            .iter()
            .any(|d| d.rule == "float-fold"));
        assert!(diags_for("crates/num/src/other.rs", src).is_empty());
    }

    #[test]
    fn lane_fold_carve_out_is_scoped_to_listed_files() {
        // The same fixed-order fold is sanctioned in the lane-kernel
        // module (hot_path AND lane_fold) but flagged in every other
        // hot-path module.
        let src = "fn f(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, &b| a + b) }";
        assert!(diags_for("crates/num/src/simd.rs", src)
            .iter()
            .all(|d| d.rule != "float-fold"));
        assert!(diags_for("crates/num/src/kernel.rs", src)
            .iter()
            .any(|d| d.rule == "float-fold"));
    }

    #[test]
    fn unsafe_simd_outside_allowlist_still_flagged() {
        // A SAFETY comment satisfies safety-comment but NOT the
        // allowlist: intrinsics in a module that verify.toml does not
        // list are still a violation — the lane_fold carve-out must not
        // loosen the unsafe rules for simd-named files.
        let src = "// SAFETY: caller checked avx2.\nunsafe fn kernel() {}\n";
        let d = diags_for("crates/num/src/simd.rs", src);
        assert!(
            d.iter()
                .any(|d| d.rule == "unsafe-allowlist" && d.line == 2),
            "{d:?}"
        );
        assert!(d.iter().all(|d| d.rule != "safety-comment"), "{d:?}");
    }

    #[test]
    fn range_dots_are_not_method_dots() {
        let d = diags_for("crates/num/src/kernel.rs", "let r = 0..sum;");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn obs_macros_pass_but_runtime_items_are_flagged() {
        // The macro path is the sanctioned surface...
        let ok = r#"fn f() { kr_obs::counter!("x", 1); kr_obs::span!("y"); }"#;
        assert!(diags_for("crates/num/src/a.rs", ok).is_empty());
        // ...while path-qualified runtime calls and imported runtime
        // types are violations, whether or not `kr_obs::` appears.
        for bad in [
            "fn f() { kr_obs::rt::record_counter(0, 1); }",
            "fn f() { let _r = kr_obs::Recorder::install(); }",
            "use kr_obs::Recorder;",
            "fn f(c: &VirtualClock) { c.advance(1); }",
        ] {
            let d = diags_for("crates/num/src/a.rs", bad);
            assert!(d.iter().any(|d| d.rule == "obs-macro-only"), "{bad}: {d:?}");
        }
        // Outside the configured crates the rule is silent.
        let d = diags_for("crates/other/src/a.rs", "use kr_obs::Recorder;");
        assert!(d.is_empty(), "{d:?}");
    }
}
