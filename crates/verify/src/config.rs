//! `verify.toml` parsing: rule allowlists and per-rule waivers.
//!
//! The workspace is offline-vendored, so this is a hand-rolled parser
//! for the small TOML subset the config actually uses:
//!
//! * `[rule.<name>]` tables whose values are strings or arrays of
//!   strings (arrays may span lines);
//! * `[[waiver]]` array-of-tables entries with `rule`, `path` and a
//!   **mandatory** non-empty `justification` string;
//! * `#` comments and blank lines.
//!
//! Anything outside that subset is a hard error — the config gates CI,
//! so silently ignoring a typoed section would defeat the point.

use std::collections::BTreeMap;

/// Values of one `[rule.<name>]` section.
#[derive(Debug, Default, Clone)]
pub struct RuleCfg {
    /// `key = ["a", "b"]` entries.
    pub lists: BTreeMap<String, Vec<String>>,
    /// `key = "value"` entries.
    pub strings: BTreeMap<String, String>,
}

/// One `[[waiver]]` entry: suppresses `rule` diagnostics in `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule name the waiver applies to.
    pub rule: String,
    /// Workspace-relative file the waiver applies to.
    pub path: String,
    /// Required human rationale; empty justifications are a config error.
    pub justification: String,
}

impl Waiver {
    /// The stale-waiver diagnostic line. One formatting site so every
    /// reporter names the *rule* alongside the file — a bare
    /// file/justification line is ambiguous the moment a file carries
    /// waivers for more than one rule (which one do you delete?).
    pub fn stale_line(&self) -> String {
        format!(
            "stale waiver: rule `{}` no longer fires in {} (\"{}\") — remove it from verify.toml",
            self.rule, self.path, self.justification
        )
    }
}

/// Parsed `verify.toml`.
#[derive(Debug, Default)]
pub struct Config {
    /// Per-rule configuration, keyed by rule name.
    pub rules: BTreeMap<String, RuleCfg>,
    /// All waivers, in file order.
    pub waivers: Vec<Waiver>,
}

impl Config {
    /// List-valued key for a rule, or an empty slice.
    pub fn rule_list(&self, rule: &str, key: &str) -> &[String] {
        self.rules
            .get(rule)
            .and_then(|r| r.lists.get(key))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Is there a waiver for (`rule`, `path`)?
    pub fn is_waived(&self, rule: &str, path: &str) -> bool {
        self.waivers
            .iter()
            .any(|w| w.rule == rule && w.path == path)
    }
}

/// A config-file error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in `verify.toml`.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "verify.toml:{}: {}", self.line, self.msg)
    }
}

enum Section {
    None,
    Rule(String),
    Waiver(usize), // index into waivers
}

/// Parses the configuration text.
pub fn parse(src: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    let mut section = Section::None;
    let mut lines = src.lines().enumerate().peekable();

    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let name = rest.strip_suffix("]]").ok_or_else(|| ConfigError {
                line: lineno,
                msg: "unterminated [[section]]".into(),
            })?;
            if name != "waiver" {
                return Err(ConfigError {
                    line: lineno,
                    msg: format!("unknown array section [[{name}]]; only [[waiver]] is supported"),
                });
            }
            cfg.waivers.push(Waiver {
                rule: String::new(),
                path: String::new(),
                justification: String::new(),
            });
            section = Section::Waiver(cfg.waivers.len() - 1);
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest.strip_suffix(']').ok_or_else(|| ConfigError {
                line: lineno,
                msg: "unterminated [section]".into(),
            })?;
            let rule = name.strip_prefix("rule.").ok_or_else(|| ConfigError {
                line: lineno,
                msg: format!("unknown section [{name}]; expected [rule.<name>] or [[waiver]]"),
            })?;
            cfg.rules.entry(rule.to_string()).or_default();
            section = Section::Rule(rule.to_string());
            continue;
        }
        let (key, value) = line.split_once('=').ok_or_else(|| ConfigError {
            line: lineno,
            msg: format!("expected `key = value`, got `{line}`"),
        })?;
        let key = key.trim().to_string();
        let mut value = value.trim().to_string();
        // Multi-line arrays: keep consuming until the bracket closes.
        if value.starts_with('[') {
            while !array_closed(&value) {
                let (_, next) = lines.next().ok_or_else(|| ConfigError {
                    line: lineno,
                    msg: format!("unterminated array for key `{key}`"),
                })?;
                value.push(' ');
                value.push_str(strip_comment(next).trim());
            }
        }
        match &section {
            Section::None => {
                return Err(ConfigError {
                    line: lineno,
                    msg: format!("key `{key}` outside any section"),
                })
            }
            Section::Rule(rule) => {
                let entry = cfg.rules.get_mut(rule).expect("section registered");
                if value.starts_with('[') {
                    entry.lists.insert(key, parse_array(&value, lineno)?);
                } else {
                    entry.strings.insert(key, parse_string(&value, lineno)?);
                }
            }
            Section::Waiver(i) => {
                let w = &mut cfg.waivers[*i];
                let s = parse_string(&value, lineno)?;
                match key.as_str() {
                    "rule" => w.rule = s,
                    "path" => w.path = s,
                    "justification" => w.justification = s,
                    other => {
                        return Err(ConfigError {
                            line: lineno,
                            msg: format!("unknown waiver key `{other}`"),
                        })
                    }
                }
            }
        }
    }

    for (i, w) in cfg.waivers.iter().enumerate() {
        if w.rule.is_empty() || w.path.is_empty() {
            return Err(ConfigError {
                line: 0,
                msg: format!("waiver #{} is missing `rule` or `path`", i + 1),
            });
        }
        if w.justification.trim().is_empty() {
            return Err(ConfigError {
                line: 0,
                msg: format!(
                    "waiver #{} ({} in {}) has no justification — every waiver must say why",
                    i + 1,
                    w.rule,
                    w.path
                ),
            });
        }
    }
    Ok(cfg)
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Is the bracket in a (possibly still growing) array value balanced?
fn array_closed(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in value.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth == 0
}

fn parse_string(value: &str, lineno: usize) -> Result<String, ConfigError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| ConfigError {
            line: lineno,
            msg: format!("expected a double-quoted string, got `{v}`"),
        })?;
    // The config never needs more than these two escapes.
    Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

fn parse_array(value: &str, lineno: usize) -> Result<Vec<String>, ConfigError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| ConfigError {
            line: lineno,
            msg: format!("expected an array, got `{v}`"),
        })?;
    let mut out = Vec::new();
    for item in split_items(inner) {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_string(item, lineno)?);
    }
    Ok(out)
}

/// Splits array items on commas outside strings.
fn split_items(inner: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in inner.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                cur.push(c);
                continue;
            }
            '"' if !escaped => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                items.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
        escaped = false;
    }
    if !cur.trim().is_empty() {
        items.push(cur);
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_and_waivers() {
        let cfg = parse(
            r#"
# comment
[rule.unsafe-allowlist]
allow = ["a.rs", "b.rs"]

[rule.wall-clock]
allow = [
    "crates/bench",  # trailing comment
]

[[waiver]]
rule = "hash-collections"
path = "crates/core/src/x.rs"
justification = "lookup-only"
"#,
        )
        .unwrap();
        assert_eq!(cfg.rule_list("unsafe-allowlist", "allow"), ["a.rs", "b.rs"]);
        assert_eq!(cfg.rule_list("wall-clock", "allow"), ["crates/bench"]);
        assert!(cfg.is_waived("hash-collections", "crates/core/src/x.rs"));
        assert!(!cfg.is_waived("hash-collections", "other.rs"));
    }

    #[test]
    fn waiver_without_justification_is_an_error() {
        let err = parse(
            r#"
[[waiver]]
rule = "wall-clock"
path = "x.rs"
justification = "  "
"#,
        )
        .unwrap_err();
        assert!(err.msg.contains("justification"), "{}", err.msg);
    }

    #[test]
    fn unknown_section_is_an_error() {
        assert!(parse("[surprise]\n").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = parse("[rule.x]\nallow = [\"a#b.rs\"]\n").unwrap();
        assert_eq!(cfg.rule_list("x", "allow"), ["a#b.rs"]);
    }
}
