//! # kr-verify
//!
//! Machine-checked enforcement of the workspace's two core contracts:
//!
//! 1. **The bitwise-determinism contract** — every result in this
//!    reproduction (Prop. 6.1 closed forms, federated local==TCP
//!    equivalence, streaming parity) relies on fixed-order reductions,
//!    deterministic iteration, and all parallelism flowing through
//!    `ExecCtx`. The [`lint`] engine walks every `crates/*/src` and
//!    `src/` file with a hand-rolled, comment/string-aware Rust lexer
//!    ([`lexer`]) and enforces the named rules in [`rules`], configured
//!    and waived (with mandatory justifications) via `verify.toml`
//!    ([`config`]).
//! 2. **The pool's unsafety contract** — the work-stealing pool's
//!    `unsafe` lifetime erasure is sound only if its completion latch,
//!    deque, and parking protocols are right under every interleaving.
//!    The `check-pool` engine ([`check_pool`]) drives the pool through
//!    thousands of bounded-preemption schedules with the deterministic
//!    scheduler in `kr_linalg::model`, turning the module-level SAFETY
//!    essay into an executed check.
//!
//! Run as `cargo run -p kr-verify -- lint` and
//! `KR_MODEL=1 cargo run -p kr-verify -- check-pool`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod check_pool;
pub mod config;
pub mod lexer;
pub mod lint;
pub mod rules;
