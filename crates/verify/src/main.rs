//! `kr-verify` CLI: `lint` and `check-pool` subcommands.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use kr_verify::{config, lint};

const USAGE: &str = "\
kr-verify — workspace contract enforcement

USAGE:
    kr-verify lint [--root DIR] [--quiet]
    kr-verify check-pool [--seed N] [--min-schedules N] [--preemptions N]

SUBCOMMANDS:
    lint         Run the static-analysis pass over crates/*/src and src/
                 against the rules and waivers in verify.toml.
    check-pool   Explore bounded-preemption schedules of the thread pool
                 (requires a build with KR_MODEL=1 so kr-linalg compiles
                 its model-checking yield points).

EXIT CODES:
    0  clean    1  violations / check failures    2  usage or config error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("lint") => run_lint(&args[1..]),
        Some("check-pool") => run_check_pool(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some(other) => {
            eprintln!("kr-verify: unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--quiet" => quiet = true,
            other => return usage_error(&format!("unknown lint flag `{other}`")),
        }
    }
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().expect("cwd");
        lint::find_root(&cwd)
    });
    let cfg_path = root.join("verify.toml");
    let cfg_text = match std::fs::read_to_string(&cfg_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("kr-verify: cannot read {}: {e}", cfg_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match config::parse(&cfg_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("kr-verify: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match lint::lint_tree(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("kr-verify: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for d in &report.diags {
        println!("{d}");
    }
    if !quiet {
        for w in &report.unused_waivers {
            eprintln!("kr-verify: warning: {}", w.stale_line());
        }
        eprintln!(
            "kr-verify lint: {} violation(s), {} waived, {} file(s) scanned",
            report.diags.len(),
            report.waived.len(),
            report.files_scanned
        );
    }
    ExitCode::from(if report.clean() { 0 } else { 1 })
}

fn run_check_pool(args: &[String]) -> ExitCode {
    let mut opts = kr_verify::check_pool::Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parse_u64 = |v: Option<&String>, what: &str| -> Result<u64, String> {
            v.ok_or_else(|| format!("{what} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{what}: {e}"))
        };
        match a.as_str() {
            "--seed" => match parse_u64(it.next(), "--seed") {
                Ok(v) => opts.seed = v,
                Err(e) => return usage_error(&e),
            },
            "--min-schedules" => match parse_u64(it.next(), "--min-schedules") {
                Ok(v) => opts.min_schedules = v as usize,
                Err(e) => return usage_error(&e),
            },
            "--preemptions" => match parse_u64(it.next(), "--preemptions") {
                Ok(v) => opts.preemptions = v as usize,
                Err(e) => return usage_error(&e),
            },
            other => return usage_error(&format!("unknown check-pool flag `{other}`")),
        }
    }
    ExitCode::from(kr_verify::check_pool::run(&opts))
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("kr-verify: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
