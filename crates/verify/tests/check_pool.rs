//! Explorer tests. These are meaningful only when kr-linalg was built
//! with `KR_MODEL=1` (CI's stable job does this for the check-pool
//! step); without the cfg they assert the graceful-degradation path
//! and skip the rest.

use kr_linalg::model::{self, ModelConfig};
use kr_linalg::ThreadPool;
use std::sync::atomic::{AtomicUsize, Ordering};

fn small_cfg(seed: u64) -> ModelConfig {
    ModelConfig {
        workers: 2,
        extra_threads: 0,
        preemption_bound: 2,
        max_schedules: 60,
        seed,
        ..ModelConfig::default()
    }
}

fn scenario() {
    let pool = ThreadPool::new(2);
    let total = AtomicUsize::new(0);
    pool.scope_chunks(3, 1, &|s, e| {
        total.fetch_add(e - s, Ordering::SeqCst);
    });
    assert_eq!(total.load(Ordering::SeqCst), 3);
}

#[test]
fn explore_errors_without_instrumentation() {
    if model::enabled() {
        return;
    }
    let err = model::explore(&small_cfg(1), scenario).unwrap_err();
    assert!(
        err.contains("KR_MODEL"),
        "error must say how to rebuild: {err}"
    );
}

#[test]
fn same_seed_same_digest() {
    if !model::enabled() {
        eprintln!("skipped: rebuild with KR_MODEL=1 to run the explorer");
        return;
    }
    let a = model::explore(&small_cfg(42), scenario).unwrap();
    let b = model::explore(&small_cfg(42), scenario).unwrap();
    assert!(a.failures.is_empty(), "{:?}", a.failures);
    assert!(a.distinct > 10, "explorer found too few schedules: {a:?}");
    assert_eq!(a.digest, b.digest, "same seed must replay identically");
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.distinct, b.distinct);
}

#[test]
fn different_seeds_change_branch_order() {
    if !model::enabled() {
        eprintln!("skipped: rebuild with KR_MODEL=1 to run the explorer");
        return;
    }
    // Different seeds walk the (truncated) tree in different orders, so
    // with a budget smaller than the full tree the visited sets differ.
    let a = model::explore(&small_cfg(1), scenario).unwrap();
    let b = model::explore(&small_cfg(2), scenario).unwrap();
    assert!(a.failures.is_empty() && b.failures.is_empty());
    assert_ne!(a.digest, b.digest, "seed should steer exploration");
}
