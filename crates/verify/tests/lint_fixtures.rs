//! Fixture tests for the lint engine: snippets with known violations
//! assert *exact* diagnostics, and tricky-but-clean snippets assert no
//! false positives. These run the same `lint_files` entry point the CLI
//! uses, with a self-contained config.

use kr_verify::config::{self, Config};
use kr_verify::lint::lint_files;
use kr_verify::rules::Diag;

fn fixture_cfg() -> Config {
    config::parse(
        r#"
[rule.unsafe-allowlist]
allow = ["crates/linalg/src/pool.rs"]

[rule.forbid-unsafe]
roots = ["crates/safe/src/lib.rs"]

[rule.hash-collections]
crates = ["crates/core", "crates/linalg"]

[rule.thread-spawn]
allow = ["crates/linalg/src/pool.rs"]

[rule.wall-clock]
allow = ["crates/bench"]

[rule.float-fold]
hot_path = ["crates/linalg/src/matrix.rs", "crates/core/src/assign.rs"]

[rule.obs-macro-only]
crates = ["crates/core", "crates/linalg"]
"#,
    )
    .expect("fixture config parses")
}

fn lint_one(path: &str, src: &str) -> Vec<Diag> {
    let files = vec![(path.to_string(), src.to_string())];
    lint_files(&files, &fixture_cfg()).diags
}

#[test]
fn unsafe_without_safety_comment_two_exact_diagnostics() {
    let src = "\
pub fn f() {
    unsafe { dangerous() }
}
";
    let diags = lint_one("crates/core/src/a.rs", src);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert_eq!(diags[0].rule, "safety-comment");
    assert_eq!(diags[0].line, 2);
    assert_eq!(diags[0].path, "crates/core/src/a.rs");
    assert_eq!(diags[1].rule, "unsafe-allowlist");
    assert_eq!(diags[1].line, 2);
}

#[test]
fn unsafe_with_safety_comment_in_allowlisted_file_is_clean() {
    let src = "\
// SAFETY: the latch guarantees the borrow outlives every job.
unsafe impl Send for RawFn {}
";
    let diags = lint_one("crates/linalg/src/pool.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn safety_comment_must_be_adjacent() {
    // A blank line between the comment and the unsafe item breaks the
    // "immediately preceding" requirement.
    let src = "\
// SAFETY: stale, too far away.

unsafe fn g() {}
";
    let diags = lint_one("crates/linalg/src/pool.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "safety-comment");
    assert_eq!(diags[0].line, 3);
}

#[test]
fn hashmap_iteration_in_numeric_crate_exact_diagnostic() {
    let src = "\
use std::collections::HashMap;
pub fn centroid_order(m: &HashMap<usize, f64>) -> Vec<usize> {
    m.keys().copied().collect()
}
";
    let diags = lint_one("crates/core/src/kmeans2.rs", src);
    // One diagnostic per line mentioning the type: the use and the
    // signature.
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "hash-collections"));
    assert_eq!(diags[0].line, 1);
    assert_eq!(diags[1].line, 2);
}

#[test]
fn string_containing_unsafe_is_not_a_violation() {
    let src = r#"
pub fn msg() -> &'static str {
    "this string says unsafe { HashMap } and is fine"
}
"#;
    let diags = lint_one("crates/core/src/strings.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn raw_strings_hide_keywords_from_the_lexer() {
    let src = r####"
pub fn raw() -> &'static str {
    r#"unsafe { thread::spawn } HashMap Instant::now"#
}
pub fn guarded() -> &'static str {
    r##"more "quotes"# and unsafe"##
}
"####;
    let diags = lint_one("crates/core/src/raw.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn nested_block_comments_are_skipped() {
    let src = "\
/* level one /* level two: unsafe { HashMap } */ still a comment */
pub fn live() {}
";
    let diags = lint_one("crates/core/src/comments.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn thread_spawn_outside_pool_flagged() {
    let src = "\
pub fn rogue() {
    std::thread::spawn(|| {});
}
";
    let diags = lint_one("crates/core/src/rogue.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "thread-spawn");
    assert_eq!(diags[0].line, 2);
}

#[test]
fn wall_clock_in_library_crate_flagged_but_bench_allowed() {
    let src = "\
pub fn t() -> std::time::Instant {
    std::time::Instant::now()
}
";
    let diags = lint_one("crates/core/src/timing.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "wall-clock");
    assert_eq!(diags[0].line, 2);
    assert!(lint_one("crates/bench/src/timing.rs", src).is_empty());
}

#[test]
fn float_fold_in_hot_path_flagged() {
    let src = "\
pub fn total(v: &[f64]) -> f64 {
    v.iter().sum::<f64>()
}
";
    let diags = lint_one("crates/linalg/src/matrix.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "float-fold");
    assert_eq!(diags[0].line, 2);
    // Same code outside the hot path is fine.
    assert!(lint_one("crates/linalg/src/util.rs", src).is_empty());
}

#[test]
fn cfg_test_modules_are_exempt_from_behavior_rules() {
    let src = "\
pub fn live() {}

#[cfg(test)]
mod tests {
    #[test]
    fn uses_hash_and_clock() {
        let mut s = std::collections::HashSet::new();
        s.insert(1);
        let _t = std::time::Instant::now();
        std::thread::spawn(|| {}).join().unwrap();
    }
}
";
    let diags = lint_one("crates/core/src/tested.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn wall_clock_waiver_is_transport_scoped_not_crate_wide() {
    // The federated crate's wall-clock waiver covers exactly the TCP
    // transport's deadline plumbing. A clock read sneaking into the
    // fault injector (which must be wall-clock-free: it keys on decoded
    // frames so local and TCP runs replay identically) stays a
    // violation under the same config shape the workspace uses.
    let cfg = config::parse(
        r#"
[rule.wall-clock]
allow = ["crates/bench"]

[[waiver]]
rule = "wall-clock"
path = "crates/federated/src/transport/tcp.rs"
justification = "read deadlines only; never measured results"
"#,
    )
    .unwrap();
    let src = "\
pub fn fire_at() -> std::time::Instant {
    std::time::Instant::now()
}
";
    let flagged = lint_files(
        &[(
            "crates/federated/src/faults.rs".to_string(),
            src.to_string(),
        )],
        &cfg,
    );
    assert_eq!(flagged.diags.len(), 1, "{:?}", flagged.diags);
    assert_eq!(flagged.diags[0].rule, "wall-clock");
    let waived = lint_files(
        &[(
            "crates/federated/src/transport/tcp.rs".to_string(),
            src.to_string(),
        )],
        &cfg,
    );
    assert!(waived.clean(), "{:?}", waived.diags);
    assert_eq!(waived.waived.len(), 1);
}

#[test]
fn deadlines_and_ordered_maps_are_not_clock_or_hash_violations() {
    // The resilience layer's idioms — Duration-valued deadlines and
    // BTreeMap/BTreeSet fault schedules — must lint clean in a numeric
    // crate: Duration is a span (no clock read) and the ordered
    // collections iterate deterministically. The fixture path sits in
    // `crates/core`, which IS hash-collections-linted here, so the test
    // proves the rule distinguishes ordered maps from hashed ones.
    let src = "\
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;
pub struct Plan {
    pub entries: BTreeMap<(u32, u32), u8>,
    pub absent: BTreeSet<u32>,
    pub deadline: Option<Duration>,
}
pub fn deadline() -> Duration {
    Duration::from_millis(150)
}
";
    let diags = lint_one("crates/core/src/plan.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn crate_root_headers_enforced() {
    let diags = lint_one("crates/safe/src/lib.rs", "//! docs\npub fn f() {}\n");
    let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    assert!(rules.contains(&"missing-docs-header"), "{diags:?}");
    assert!(rules.contains(&"forbid-unsafe"), "{diags:?}");

    let ok = "#![warn(missing_docs)]\n#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert!(lint_one("crates/safe/src/lib.rs", ok).is_empty());
}

#[test]
fn waiver_suppresses_with_justification_and_reports_stale() {
    let cfg = config::parse(
        r#"
[rule.hash-collections]
crates = ["crates/core"]

[[waiver]]
rule = "hash-collections"
path = "crates/core/src/lookup.rs"
justification = "membership-only set; order never observed"

[[waiver]]
rule = "hash-collections"
path = "crates/core/src/gone.rs"
justification = "file was removed last PR"
"#,
    )
    .unwrap();
    let files = vec![(
        "crates/core/src/lookup.rs".to_string(),
        "use std::collections::HashSet;\n".to_string(),
    )];
    let report = lint_files(&files, &cfg);
    assert!(report.clean());
    assert_eq!(report.waived.len(), 1);
    assert_eq!(report.unused_waivers.len(), 1);
    assert_eq!(report.unused_waivers[0].path, "crates/core/src/gone.rs");
    // The diagnostic line must name the rule, not just the file: one
    // file can carry waivers for several rules, and a file-only line
    // doesn't say which entry to delete.
    let line = report.unused_waivers[0].stale_line();
    assert!(line.contains("hash-collections"), "{line}");
    assert!(line.contains("crates/core/src/gone.rs"), "{line}");
    assert!(line.contains("file was removed last PR"), "{line}");
}

#[test]
fn assign_engine_is_a_float_fold_hot_path() {
    // The bounds-gated assignment engine lives on the hot path: a raw
    // float reduction slipping into a bound update would be exactly the
    // unordered-fold hazard the rule exists for.
    let src = "fn drift(v: &[f64]) -> f64 { v.iter().map(|x| x * x).sum::<f64>() }";
    let diags = lint_one("crates/core/src/assign.rs", src);
    assert!(diags.iter().any(|d| d.rule == "float-fold"), "{diags:?}");
    // Ordered manual loops — how the real module accumulates bounds —
    // stay clean.
    let ok = "fn drift(v: &[f64]) -> f64 { let mut a = 0.0; for x in v { a += x * x; } a }";
    assert!(lint_one("crates/core/src/assign.rs", ok).is_empty());
}

#[test]
fn stale_waiver_line_disambiguates_rules_on_one_file() {
    // Two waivers on the same file, different rules; only one is live.
    // The stale line must single out the dead rule by name.
    let cfg = config::parse(
        r#"
[rule.hash-collections]
crates = ["crates/core"]

[rule.wall-clock]
allow = []

[[waiver]]
rule = "hash-collections"
path = "crates/core/src/mixed.rs"
justification = "membership-only set"

[[waiver]]
rule = "wall-clock"
path = "crates/core/src/mixed.rs"
justification = "timing removed two PRs ago"
"#,
    )
    .unwrap();
    let files = vec![(
        "crates/core/src/mixed.rs".to_string(),
        "use std::collections::HashSet;\n".to_string(),
    )];
    let report = lint_files(&files, &cfg);
    assert!(report.clean());
    assert_eq!(report.unused_waivers.len(), 1);
    let line = report.unused_waivers[0].stale_line();
    assert!(line.contains("wall-clock"), "{line}");
    assert!(!line.contains("hash-collections"), "{line}");
}

#[test]
fn wall_clock_allowlist_is_scoped_to_the_obs_clock_module() {
    // The kr-obs Clock contract: MonotonicClock in clock.rs is the one
    // sanctioned Instant site. Under the workspace-shaped config an
    // Instant read in any *other* kr-obs module (ring, recorder, codec)
    // must still flag — the allowlist names a file, not the crate.
    let cfg = config::parse(
        r#"
[rule.wall-clock]
allow = ["crates/bench", "crates/obs/src/clock.rs"]
"#,
    )
    .unwrap();
    let src = "\
pub fn stamp() -> u64 {
    let _t = std::time::Instant::now();
    0
}
";
    let allowed = lint_files(
        &[("crates/obs/src/clock.rs".to_string(), src.to_string())],
        &cfg,
    );
    assert!(allowed.clean(), "{:?}", allowed.diags);
    let flagged = lint_files(
        &[("crates/obs/src/ring.rs".to_string(), src.to_string())],
        &cfg,
    );
    assert_eq!(flagged.diags.len(), 1, "{:?}", flagged.diags);
    assert_eq!(flagged.diags[0].rule, "wall-clock");
    assert_eq!(flagged.diags[0].line, 2);
}

#[test]
fn obs_macro_calls_pass_but_direct_recorder_use_is_flagged() {
    // The instrumentation idiom — feature-gated macros — lints clean in
    // an instrumented crate...
    let ok = r#"
pub fn hot(rows: usize) {
    let _span = kr_obs::span!("pool.chunk", "rows" => rows);
    kr_obs::counter!("pool.steal", 1);
    kr_obs::hist!("pool.queue_depth", rows);
    kr_obs::gauge!("stream.batch_inertia", 0.5);
}
"#;
    assert!(lint_one("crates/linalg/src/pool.rs", ok).is_empty());

    // ...while reaching the runtime directly — path-qualified or via an
    // import — bypasses the feature gate and is exactly what the rule
    // bans.
    let direct = "\
pub fn rogue() {
    let _r = kr_obs::Recorder::install();
    kr_obs::rt::record_counter(0, 1);
}
";
    let diags = lint_one("crates/core/src/rogue_obs.rs", direct);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "obs-macro-only"));
    assert_eq!(diags[0].line, 2);
    assert_eq!(diags[1].line, 3);

    let imported = "\
use kr_obs::{Recorder, VirtualClock};
";
    let diags = lint_one("crates/core/src/rogue_obs.rs", imported);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "obs-macro-only");

    // Outside the configured crates (the harness layer) recorder
    // handling is legitimate and the rule stays silent.
    assert!(lint_one("crates/bench/src/capture.rs", direct).is_empty());
}

#[test]
fn missing_justification_is_a_config_error() {
    let err = config::parse(
        r#"
[[waiver]]
rule = "wall-clock"
path = "crates/core/src/x.rs"
"#,
    )
    .unwrap_err();
    assert!(err.msg.contains("justification"), "{}", err.msg);
}
