//! The current tree must lint clean: no unwaived violations and no
//! stale waivers. This is the same check CI runs via
//! `cargo run -p kr-verify -- lint`, executed in-process so `cargo test`
//! catches regressions (and new unjustified waivers) early.

use kr_verify::{config, lint};

#[test]
fn workspace_tree_lints_clean() {
    let root = lint::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")));
    let cfg_text = std::fs::read_to_string(root.join("verify.toml")).expect("verify.toml");
    let cfg = config::parse(&cfg_text).expect("verify.toml parses");
    let report = lint::lint_tree(&root, &cfg).expect("walk tree");
    assert!(report.files_scanned > 40, "suspiciously few files scanned");
    assert!(
        report.clean(),
        "lint violations in the tree:\n{}",
        report
            .diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.unused_waivers.is_empty(),
        "stale waivers: {:?}",
        report.unused_waivers
    );
}
