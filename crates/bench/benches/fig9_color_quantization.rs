//! Figure 9 / case study 1: color quantization with a 12-vector
//! codebook. Random pixels vs k-Means(12) vs KR-k-Means-x(6+6).
//!
//! Paper numbers (on its image, inertia in 0-255 RGB space):
//! random 4686, k-Means 2009, Khatri-Rao 1144 — the reproduction target
//! is the ordering and the rough factors (random >> kM ~ 2x > KR).

use kr_core::aggregator::Aggregator;
use kr_core::kmeans::KMeans;
use kr_core::kr_kmeans::KrKMeans;
use kr_metrics::inertia;
use rand::{Rng, SeedableRng};

fn main() {
    let pixels = kr_datasets::image::quantization_pixels(1000, 5);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let random_rows: Vec<usize> = (0..12).map(|_| rng.gen_range(0..pixels.nrows())).collect();
    let random_inertia = inertia(&pixels, &pixels.select_rows(&random_rows));
    let km = KMeans::new(12)
        .with_n_init(20)
        .with_seed(1)
        .fit(&pixels)
        .unwrap();
    let kr = KrKMeans::new(vec![6, 6])
        // Reproduce the paper's Algorithm 1: no warm-start candidate.
        .with_warm_start(false)
        .with_aggregator(Aggregator::Product)
        .with_n_init(20)
        .with_seed(1)
        .fit(&pixels)
        .unwrap();

    // Report in the paper's 0-255 RGB units.
    let to_255 = 255.0 * 255.0;
    println!("=== Figure 9: color quantization (1000 pixels, 12-vector budget) ===");
    println!(
        "{:<26}{:>9}{:>9}{:>14}{:>14}",
        "method", "vectors", "colors", "inertia", "paper"
    );
    println!(
        "{:<26}{:>9}{:>9}{:>14.0}{:>14}",
        "random pixels",
        12,
        12,
        random_inertia * to_255,
        4686
    );
    println!(
        "{:<26}{:>9}{:>9}{:>14.0}{:>14}",
        "k-Means",
        12,
        12,
        km.inertia * to_255,
        2009
    );
    println!(
        "{:<26}{:>9}{:>9}{:>14.0}{:>14}",
        "Khatri-Rao-k-Means-x",
        12,
        36,
        kr.inertia * to_255,
        1144
    );
    let ratio_km = km.inertia / kr.inertia;
    println!(
        "\nmeasured k-Means / KR inertia ratio: {ratio_km:.2} (paper: {:.2}); \
         ordering random >> k-Means > KR {}",
        2009.0 / 1144.0,
        if random_inertia > km.inertia && km.inertia > kr.inertia {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
