//! Figure 8: runtime and peak memory of Naive-x, k-Means(h1+h2),
//! k-Means(h1h2), KR-+(h1+h2), KR-x(h1+h2) — plus the external
//! summarization baselines Rk-means(h1+h2) and NNK-Means(h1+h2) at
//! vector-budget parity — as the number of data points, features, and
//! centroids grows (Blobs).
//!
//! Paper headline: KR-k-Means has a near-constant runtime overhead over
//! k-Means(h1h2) (same asymptotic complexity) and uses *less* memory as
//! the number of centroids grows (up to 2.7x less).
//!
//! The sweep grid is scaled down for the single-core environment; the
//! axes' growth directions and the crossovers are the target.

// Peak-memory reporting: without this, kr_bench::measure sees no heap.
kr_bench::install_counting_allocator!();

use kr_bench::{measure, mib};
use kr_core::aggregator::Aggregator;
use kr_core::baselines::{NnkMeans, RkMeans};
use kr_core::kmeans::KMeans;
use kr_core::kr_kmeans::{KrKMeans, KrVariant};
use kr_core::naive::NaiveKr;
use kr_linalg::{ExecCtx, Matrix};

fn run_all(data: &Matrix, h: usize, label: &str) {
    let max_iter = 10;
    let mut results: Vec<(&str, f64, usize)> = Vec::new();
    let (m1, t, p) = measure(|| {
        NaiveKr::new(vec![h, h])
            .with_kmeans_n_init(1)
            .with_decomp_max_iter(100)
            .fit(data)
            .unwrap()
    });
    std::hint::black_box(&m1);
    results.push(("Naive-x", t, p));
    let (m2, t, p) = measure(|| {
        KMeans::new(2 * h)
            .with_n_init(1)
            .with_max_iter(max_iter)
            .fit(data)
            .unwrap()
    });
    std::hint::black_box(&m2);
    results.push(("kM(h1+h2)", t, p));
    let (m3, t, p) = measure(|| {
        KMeans::new(h * h)
            .with_n_init(1)
            .with_max_iter(max_iter)
            .fit(data)
            .unwrap()
    });
    std::hint::black_box(&m3);
    results.push(("kM(h1h2)", t, p));
    let (m4, t, p) = measure(|| {
        // Warm start would materialize the full grid and mask the
        // O((n + 2h) m) space bound this figure measures.
        KrKMeans::new(vec![h, h])
            .with_aggregator(Aggregator::Sum)
            .with_variant(KrVariant::MemoryEfficient)
            .with_warm_start(false)
            .with_n_init(1)
            .with_max_iter(max_iter)
            .fit(data)
            .unwrap()
    });
    std::hint::black_box(&m4);
    results.push(("KR-+", t, p));
    let (m5, t, p) = measure(|| {
        KrKMeans::new(vec![h, h])
            .with_aggregator(Aggregator::Product)
            .with_variant(KrVariant::MemoryEfficient)
            .with_warm_start(false)
            .with_n_init(1)
            .with_max_iter(max_iter)
            .fit(data)
            .unwrap()
    });
    std::hint::black_box(&m5);
    results.push(("KR-x", t, p));
    // External baselines at the same h1+h2 vector budget (the fig6 /
    // table2 parity protocol). Rk-means' grid compression is the series
    // expected to flatten as n grows.
    let (m6, t, p) = measure(|| {
        RkMeans::new(2 * h)
            .with_n_init(1)
            .with_max_iter(max_iter)
            .fit(data)
            .unwrap()
    });
    std::hint::black_box(&m6);
    results.push(("Rk(h+h)", t, p));
    let (m7, t, p) = measure(|| {
        NnkMeans::new(2 * h)
            .with_n_init(1)
            .with_max_iter(max_iter)
            .fit(data)
            .unwrap()
    });
    std::hint::black_box(&m7);
    results.push(("NNK(h+h)", t, p));
    print!("{label:<24}");
    for (_, t, _) in &results {
        print!("{:>10.3}", t);
    }
    print!("   |");
    for (_, _, p) in &results {
        print!("{:>9.1}", mib(*p));
    }
    println!();
}

fn main() {
    println!("=== Figure 8: scalability (runtime seconds | peak heap MiB) ===");
    println!(
        "{:<24}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}   \
         |{:>9}{:>9}{:>9}{:>9}{:>9}{:>9}{:>9}",
        "sweep",
        "Naive-x",
        "kM(h+h)",
        "kM(hh)",
        "KR-+",
        "KR-x",
        "Rk(h+h)",
        "NNK(h+h)",
        "Naive-x",
        "kM(h+h)",
        "kM(hh)",
        "KR-+",
        "KR-x",
        "Rk(h+h)",
        "NNK(h+h)"
    );

    // --- Vary number of data points (k = 100, m = 20).
    let h = 10;
    for n in [1000usize, 2000, 4000, 8000] {
        let n = kr_bench::scaled(n, 200);
        let ds = kr_datasets::synthetic::blobs(n, 20, 100, 1.0, 70);
        run_all(&ds.data, h, &format!("points n={n}"));
    }

    // --- Vary number of features (n = 400, k = 100).
    for m in [200usize, 400, 800, 1600] {
        let ds = kr_datasets::synthetic::blobs(kr_bench::scaled(400, 100), m, 100, 1.0, 71);
        run_all(&ds.data, h, &format!("features m={m}"));
    }

    // --- Vary number of centroids (n = 2000, m = 20).
    for h in [8usize, 12, 16, 24] {
        let k = h * h;
        // Floor keeps n >= k for the largest grid (24^2 = 576 clusters).
        let ds = kr_datasets::synthetic::blobs(kr_bench::scaled(2000, 700), 20, 100, 1.0, 72);
        run_all(&ds.data, h, &format!("centroids k={k}"));
    }

    // --- Assignment pruning on/off (n = 2000, m = 20): the bounds-gated
    // AssignEngine axis. Same seeds and the bitwise contract mean both
    // columns fit the identical model; only distance evaluations and
    // wall-clock change. skip% = dists_skipped / (computed + skipped)
    // over the whole fit (init + warm-up iterations included, which is
    // why it trails the post-warmup BENCH_assign.json ratios).
    println!("\n=== Pruning axis: bounds-gated assignment on/off (same fit, bit-identical) ===");
    println!(
        "{:<16}{:>12}{:>12}{:>9}{:>8}{:>14}{:>14}{:>9}{:>8}",
        "sweep", "kM off s", "kM on s", "x", "skip%", "KR-+ off s", "KR-+ on s", "x", "skip%"
    );
    for h in [8usize, 12, 16, 24] {
        let k = h * h;
        let ds = kr_datasets::synthetic::blobs(kr_bench::scaled(2000, 700), 20, 100, 1.0, 72);
        let exec_off = ExecCtx::serial().with_prune_mode(kr_linalg::PruneMode::Off);
        let exec_on = ExecCtx::serial().with_prune_mode(kr_linalg::PruneMode::Auto);
        let km_fit = |exec: ExecCtx| {
            measure(|| {
                KMeans::new(k)
                    .with_n_init(1)
                    .with_max_iter(10)
                    .with_exec(exec)
                    .fit(&ds.data)
                    .unwrap()
            })
        };
        let (km_off, t_km_off, _) = km_fit(exec_off.clone());
        let (km_on, t_km_on, _) = km_fit(exec_on.clone());
        assert_eq!(km_off.labels, km_on.labels, "pruning must be invisible");
        assert_eq!(km_off.inertia.to_bits(), km_on.inertia.to_bits());
        let kr_fit = |exec: ExecCtx| {
            measure(|| {
                KrKMeans::new(vec![h, h])
                    .with_aggregator(Aggregator::Sum)
                    .with_variant(KrVariant::MemoryEfficient)
                    .with_warm_start(false)
                    .with_n_init(1)
                    .with_max_iter(10)
                    .with_exec(exec)
                    .fit(&ds.data)
                    .unwrap()
            })
        };
        let (kr_off, t_kr_off, _) = kr_fit(exec_off);
        let (kr_on, t_kr_on, _) = kr_fit(exec_on);
        assert_eq!(kr_off.labels, kr_on.labels, "pruning must be invisible");
        assert_eq!(kr_off.inertia.to_bits(), kr_on.inertia.to_bits());
        println!(
            "{:<16}{:>12.3}{:>12.3}{:>9.2}{:>7.1}%{:>14.3}{:>14.3}{:>9.2}{:>7.1}%",
            format!("centroids k={k}"),
            t_km_off,
            t_km_on,
            t_km_off / t_km_on,
            100.0 * km_on.prune_stats.skip_ratio(),
            t_kr_off,
            t_kr_on,
            t_kr_off / t_kr_on,
            100.0 * kr_on.prune_stats.skip_ratio(),
        );
    }

    // --- Vary worker threads (n = 4000, m = 20, k = 100): the ExecCtx
    // axis. Same seeds at every budget, so the fitted models (hence the
    // work) are identical; only wall-clock may change.
    println!("\n=== Threads axis: same fit at 1/2/4/8 workers (runtime seconds) ===");
    let ds = kr_datasets::synthetic::blobs(kr_bench::scaled(4000, 500), 20, 100, 1.0, 73);
    println!("{:<12}{:>12}{:>16}", "threads", "kM(100)", "KR-+(10+10)");
    for threads in [1usize, 2, 4, 8] {
        let exec = ExecCtx::threaded(threads);
        let (km, t_km, _) = measure(|| {
            KMeans::new(100)
                .with_n_init(1)
                .with_max_iter(10)
                .with_exec(exec.clone())
                .fit(&ds.data)
                .unwrap()
        });
        std::hint::black_box(&km);
        let (kr, t_kr, _) = measure(|| {
            KrKMeans::new(vec![10, 10])
                .with_aggregator(Aggregator::Sum)
                .with_warm_start(false)
                .with_n_init(1)
                .with_max_iter(10)
                .with_exec(exec)
                .fit(&ds.data)
                .unwrap()
        });
        std::hint::black_box(&kr);
        println!("{threads:<12}{t_km:>12.3}{t_kr:>16.3}");
    }

    // --- Allocation counts: the Scratch arena should make steady-state
    // Lloyd iterations allocation-free (buffers are taken from and
    // returned to the per-ExecCtx pools, so only the first iteration of
    // a fit touches the allocator). Two fits that differ only in
    // max_iter isolate the per-iteration cost: tol = 0 disables early
    // convergence and the shared seed makes the prefix work identical,
    // so the delta divided by the extra iterations is the steady-state
    // allocation rate.
    println!("\n=== Allocations per Lloyd iteration (Scratch arena) ===");
    let ds = kr_datasets::synthetic::blobs(kr_bench::scaled(2000, 400), 16, 64, 1.0, 74);
    let allocs_for = |iters: usize| {
        let before = kr_bench::alloc_counter::alloc_calls();
        let model = KrKMeans::new(vec![8, 8])
            .with_variant(KrVariant::MemoryEfficient)
            .with_warm_start(false)
            .with_n_init(1)
            .with_tol(0.0)
            .with_max_iter(iters)
            .fit(&ds.data)
            .unwrap();
        std::hint::black_box(&model);
        kr_bench::alloc_counter::alloc_calls() - before
    };
    let (short, long) = (4usize, 12usize);
    let (a_short, a_long) = (allocs_for(short), allocs_for(long));
    let per_iter = a_long.saturating_sub(a_short) as f64 / (long - short) as f64;
    println!("KR-+(8x8) fit, max_iter={short}: {a_short} allocs; max_iter={long}: {a_long} allocs");
    println!("steady-state: {per_iter:.1} allocs per extra iteration (target: O(1) after warm-up)");

    println!(
        "\nExpected shape (paper Fig. 8): all curves grow with n/m/k; KR's runtime \
         overhead over kM(h1h2) stays near-constant; kM(h1h2)'s peak memory pulls \
         ahead of KR's as the centroid count grows (the KR series stores h1+h2 \
         vectors instead of h1*h2). Baseline series: Rk-means' grid compression \
         decouples its Lloyd phase from n, so its runtime curve should flatten \
         exactly where the points axis grows (at the cost of grid memory in m); \
         NNK-Means pays per-point sparse coding, tracking kM(h1+h2)'s growth \
         with a constant-factor overhead. On the threads axis the fitted models \
         are bit-identical at every worker count (deterministic chunk geometry); \
         runtime should drop toward the core count and flatten past it. On the \
         pruning axis the dense kM columns speed up with k while the KR-+ \
         on-the-fly columns may not at whole-fit scale: norm-box gates are \
         weaker than triangle-inequality bounds and the init + warm-up \
         iterations (where bounds cannot prune) dominate a 10-iteration fit — \
         BENCH_assign.json isolates the post-warmup regime where the >= 3x \
         distance-eval and >= 2x wall-clock floors are enforced."
    );
}
