//! Criterion microbenchmarks of the kernels every experiment rests on:
//! pairwise squared distances, the KR assignment step (both variants),
//! the Proposition 6.1 update, and the Hungarian solver.
//!
//! Besides the console lines, the run persists every median to
//! `BENCH_kernels.json` (schema documented in EXPERIMENTS.md "Kernel
//! modes"): one record per benchmark with the group, bench label, median
//! nanoseconds, the input shape, and which `KernelMode` the bench
//! exercised — the machine-readable form the SIMD speedup criteria are
//! checked against.

use criterion::{criterion_group, BenchmarkId, Criterion};
use kr_core::aggregator::Aggregator;
use kr_core::kr_kmeans::{prop61_update_pass, KrKMeans, KrVariant};
use kr_linalg::{ops, ExecCtx, KernelMode, Matrix};
use std::hint::black_box;

/// The seed's naive `ikj` matmul, kept verbatim as the regression
/// baseline the blocked kernel must beat.
fn seed_naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, n) = (a.nrows(), b.ncols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for p in 0..a.ncols() {
            let av = a.get(i, p);
            if av == 0.0 {
                continue;
            }
            let brow = b.row(p);
            for (o, &bv) in out.row_mut(i).iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// The PR-2 blocked kernel *without* B-panel packing, kept verbatim as
/// the regression baseline for the packed micro-kernel: identical panel
/// order and 4-row register tiles, but each tile re-reads B's rows at
/// stride `n` straight from the operand. Bitwise-identical output to
/// `Matrix::matmul` (packing only copies values), so the group compares
/// pure memory behavior.
fn unpacked_blocked_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (a.nrows(), a.ncols(), b.ncols());
    let (mc, kc, nc) = (64usize, 256usize, 1024usize);
    let mut out = Matrix::zeros(m, n);
    let (a, b) = (a.as_slice(), b.as_slice());
    for ic in (0..m).step_by(mc) {
        let h = mc.min(m - ic);
        let c = &mut out.as_mut_slice()[ic * n..(ic + h) * n];
        for jc in (0..n).step_by(nc) {
            let jw = nc.min(n - jc);
            for pc in (0..k).step_by(kc) {
                let pw = kc.min(k - pc);
                let mut ir = 0;
                while ir + 4 <= h {
                    let block = &mut c[ir * n..(ir + 4) * n];
                    let (r0, rest) = block.split_at_mut(n);
                    let (r1, rest) = rest.split_at_mut(n);
                    let (r2, r3) = rest.split_at_mut(n);
                    let (r0, r1, r2, r3) = (
                        &mut r0[jc..jc + jw],
                        &mut r1[jc..jc + jw],
                        &mut r2[jc..jc + jw],
                        &mut r3[jc..jc + jw],
                    );
                    let a_base = (ic + ir) * k;
                    for p in pc..pc + pw {
                        let a0 = a[a_base + p];
                        let a1 = a[a_base + k + p];
                        let a2 = a[a_base + 2 * k + p];
                        let a3 = a[a_base + 3 * k + p];
                        let b_row = &b[p * n + jc..p * n + jc + jw];
                        ops::axpy(r0, a0, b_row);
                        ops::axpy(r1, a1, b_row);
                        ops::axpy(r2, a2, b_row);
                        ops::axpy(r3, a3, b_row);
                    }
                    ir += 4;
                }
                while ir < h {
                    let row = &mut c[ir * n + jc..ir * n + jc + jw];
                    let a_base = (ic + ir) * k;
                    for p in pc..pc + pw {
                        ops::axpy(row, a[a_base + p], &b[p * n + jc..p * n + jc + jw]);
                    }
                    ir += 1;
                }
            }
        }
    }
    out
}

/// The seed's pairwise kernel: materialize the full dot matrix row by
/// row, then a second pass applying the norm expansion.
fn seed_naive_pairwise(x: &Matrix, c: &Matrix) -> Matrix {
    let x_norms = x.row_sq_norms();
    let c_norms = c.row_sq_norms();
    let mut dots = Matrix::zeros(x.nrows(), c.nrows());
    for i in 0..x.nrows() {
        for j in 0..c.nrows() {
            let d = ops::dot(x.row(i), c.row(j));
            dots.set(i, j, d);
        }
    }
    for (i, &xn) in x_norms.iter().enumerate() {
        for (d, &cn) in dots.row_mut(i).iter_mut().zip(c_norms.iter()) {
            *d = (xn + cn - 2.0 * *d).max(0.0);
        }
    }
    dots
}

fn bench_matmul_blocked(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_512x512x512");
    group.sample_size(10);
    let a = Matrix::from_fn(512, 512, |i, j| ((i * 31 + j * 7) % 97) as f64 * 0.01);
    let b = Matrix::from_fn(512, 512, |i, j| ((i * 13 + j * 3) % 89) as f64 * 0.02);
    group.bench_function("seed_naive", |bch| {
        bch.iter(|| black_box(seed_naive_matmul(&a, &b)));
    });
    // Before/after for the packed-B micro-kernel: `blocked_unpacked` is
    // the PR-2 kernel, `blocked_serial` the current packed one. Their
    // outputs are asserted bitwise equal before timing.
    assert_eq!(unpacked_blocked_matmul(&a, &b), a.matmul(&b).unwrap());
    group.bench_function("blocked_unpacked", |bch| {
        bch.iter(|| black_box(unpacked_blocked_matmul(&a, &b)));
    });
    let scalar = ExecCtx::serial().with_kernel_mode(KernelMode::Scalar);
    group.bench_function("blocked_serial", |bch| {
        bch.iter(|| black_box(a.matmul_with(&b, &scalar).unwrap()));
    });
    let simd = ExecCtx::serial().with_kernel_mode(KernelMode::Simd);
    println!("note: simd backend = {}", kr_linalg::simd::backend().name());
    group.bench_function("simd_serial", |bch| {
        bch.iter(|| black_box(a.matmul_with(&b, &simd).unwrap()));
    });
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let exec = ExecCtx::threaded(threads).with_kernel_mode(KernelMode::Scalar);
    group.bench_function(format!("blocked_{threads}_threads"), |bch| {
        bch.iter(|| black_box(a.matmul_with(&b, &exec).unwrap()));
    });
    group.finish();
}

fn bench_matmul_wide_packed(c: &mut Criterion) {
    // Outputs wider than one `nc` slab (n = 2048 > 1024) are where the
    // packed-B micro-kernel earns its copy: the unpacked kernel re-walks
    // strided panel rows on every register-tile pass.
    let mut group = c.benchmark_group("matmul_wide_384x512x2048");
    group.sample_size(10);
    let a = Matrix::from_fn(384, 512, |i, j| ((i * 31 + j * 7) % 97) as f64 * 0.01);
    let b = Matrix::from_fn(512, 2048, |i, j| ((i * 13 + j * 3) % 89) as f64 * 0.02);
    assert_eq!(unpacked_blocked_matmul(&a, &b), a.matmul(&b).unwrap());
    group.bench_function("blocked_unpacked", |bch| {
        bch.iter(|| black_box(unpacked_blocked_matmul(&a, &b)));
    });
    group.bench_function("blocked_packed_serial", |bch| {
        bch.iter(|| black_box(a.matmul(&b).unwrap()));
    });
    group.finish();
}

fn bench_pairwise_blocked(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairwise_sqdist_20000x64x32");
    group.sample_size(10);
    let x = Matrix::from_fn(20_000, 32, |i, j| ((i * 31 + j * 7) % 97) as f64 * 0.01);
    let cmat = Matrix::from_fn(64, 32, |i, j| ((i * 13 + j * 3) % 89) as f64 * 0.02);
    group.bench_function("seed_naive", |bch| {
        bch.iter(|| black_box(seed_naive_pairwise(&x, &cmat)));
    });
    let scalar = ExecCtx::serial().with_kernel_mode(KernelMode::Scalar);
    group.bench_function("fused_blocked_serial", |bch| {
        bch.iter(|| black_box(x.pairwise_sqdist_with(&cmat, &scalar).unwrap()));
    });
    let simd = ExecCtx::serial().with_kernel_mode(KernelMode::Simd);
    group.bench_function("fused_simd_serial", |bch| {
        bch.iter(|| black_box(x.pairwise_sqdist_with(&cmat, &simd).unwrap()));
    });
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let exec = ExecCtx::threaded(threads).with_kernel_mode(KernelMode::Scalar);
    group.bench_function(format!("fused_blocked_{threads}_threads"), |bch| {
        bch.iter(|| black_box(x.pairwise_sqdist_with(&cmat, &exec).unwrap()));
    });
    group.finish();
}

fn bench_pairwise_sqdist(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairwise_sqdist");
    group.sample_size(10);
    for &(n, k, m) in &[(500usize, 50usize, 32usize), (1000, 100, 32)] {
        let x = Matrix::from_fn(n, m, |i, j| ((i * 31 + j * 7) % 97) as f64 * 0.01);
        let cmat = Matrix::from_fn(k, m, |i, j| ((i * 13 + j * 3) % 89) as f64 * 0.02);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{k}x{m}")),
            &(),
            |b, _| {
                b.iter(|| black_box(x.pairwise_sqdist(&cmat).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_kr_assignment_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("kr_fit_one_iter");
    group.sample_size(10);
    let ds = kr_datasets::synthetic::blobs(1000, 16, 64, 1.0, 90);
    for (name, variant) in [
        ("time_efficient", KrVariant::TimeEfficient),
        ("memory_efficient", KrVariant::MemoryEfficient),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    KrKMeans::new(vec![8, 8])
                        // Reproduce the paper's Algorithm 1: no warm-start candidate.
                        .with_warm_start(false)
                        .with_variant(variant)
                        .with_n_init(1)
                        .with_max_iter(2)
                        .with_seed(1)
                        .fit(&ds.data)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_prop61_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop61_update_pass");
    group.sample_size(10);
    let ds = kr_datasets::synthetic::blobs(2000, 16, 36, 1.0, 91);
    let labels: Vec<usize> = (0..2000).map(|i| i % 36).collect();
    for agg in [Aggregator::Sum, Aggregator::Product] {
        group.bench_function(format!("agg_{agg}"), |b| {
            b.iter(|| {
                let mut sets = vec![
                    Matrix::from_fn(6, 16, |i, j| (i + j) as f64 * 0.1 + 0.5),
                    Matrix::from_fn(6, 16, |i, j| (i * j + 1) as f64 * 0.05 + 0.5),
                ];
                prop61_update_pass(&ds.data, &labels, &mut sets, agg, 0);
                black_box(sets)
            });
        });
    }
    group.finish();
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    group.sample_size(10);
    for n in [50usize, 100] {
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i * 37 + j * 17) % 101) as f64).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| black_box(kr_metrics::hungarian::solve(&cost)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pairwise_sqdist,
    bench_matmul_blocked,
    bench_matmul_wide_packed,
    bench_pairwise_blocked,
    bench_kr_assignment_variants,
    bench_prop61_update,
    bench_hungarian
);

/// Input shape per benchmark group — kept in sync with the constructors
/// above so `BENCH_kernels.json` records shapes without re-deriving them
/// from labels.
fn shape_of(group: &str) -> &'static str {
    match group {
        "matmul_512x512x512" => "512x512x512",
        "matmul_wide_384x512x2048" => "384x512x2048",
        "pairwise_sqdist_20000x64x32" => "20000x32 vs 64x32",
        "pairwise_sqdist" => "per-label NxKx32",
        "kr_fit_one_iter" => "1000x16, hs=[8,8]",
        "prop61_update_pass" => "2000x16, hs=[6,6]",
        "hungarian" => "per-label NxN",
        _ => "",
    }
}

/// Persists every recorded median through the shared
/// [`kr_bench::bench_json`] writer (see EXPERIMENTS.md "Kernel modes"
/// for the schema). `extra.kernel` is `simd` for the
/// `KernelMode::Simd` legs, `scalar` for everything else (including
/// the seed-baseline loops, which are scalar by definition).
fn write_results_json(results: &[criterion::BenchResult]) {
    let records: Vec<kr_bench::bench_json::Record> = results
        .iter()
        .map(|r| {
            let (group, bench) = r
                .label
                .split_once('/')
                .unwrap_or((r.label.as_str(), r.label.as_str()));
            let kernel = if bench.contains("simd") {
                "simd"
            } else {
                "scalar"
            };
            kr_bench::bench_json::Record::new(group, bench, r.median_ns)
                .with_shape(shape_of(group))
                .with("kernel", kernel)
        })
        .collect();
    kr_bench::bench_json::write("BENCH_kernels.json", &records).expect("write BENCH_kernels.json");
}

/// Prints the simd-vs-scalar speedups the acceptance criteria track.
fn print_speedups(results: &[criterion::BenchResult]) {
    let median = |label: &str| {
        results
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.median_ns)
    };
    for (name, scalar, simd) in [
        (
            "matmul_512x512x512",
            "matmul_512x512x512/blocked_serial",
            "matmul_512x512x512/simd_serial",
        ),
        (
            "pairwise_sqdist_20000x64x32",
            "pairwise_sqdist_20000x64x32/fused_blocked_serial",
            "pairwise_sqdist_20000x64x32/fused_simd_serial",
        ),
    ] {
        if let (Some(s), Some(v)) = (median(scalar), median(simd)) {
            println!("speedup: {name:<40} simd {:.2}x over scalar", s / v);
        }
    }
}

fn main() {
    benches();
    let results = criterion::take_results();
    print_speedups(&results);
    write_results_json(&results);
}
