//! Criterion microbenchmarks of the kernels every experiment rests on:
//! pairwise squared distances, the KR assignment step (both variants),
//! the Proposition 6.1 update, and the Hungarian solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kr_core::aggregator::Aggregator;
use kr_core::kr_kmeans::{prop61_update_pass, KrKMeans, KrVariant};
use kr_linalg::Matrix;
use std::hint::black_box;

fn bench_pairwise_sqdist(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairwise_sqdist");
    group.sample_size(10);
    for &(n, k, m) in &[(500usize, 50usize, 32usize), (1000, 100, 32)] {
        let x = Matrix::from_fn(n, m, |i, j| ((i * 31 + j * 7) % 97) as f64 * 0.01);
        let cmat = Matrix::from_fn(k, m, |i, j| ((i * 13 + j * 3) % 89) as f64 * 0.02);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{k}x{m}")),
            &(),
            |b, _| {
                b.iter(|| black_box(x.pairwise_sqdist(&cmat).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_kr_assignment_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("kr_fit_one_iter");
    group.sample_size(10);
    let ds = kr_datasets::synthetic::blobs(1000, 16, 64, 1.0, 90);
    for (name, variant) in [
        ("time_efficient", KrVariant::TimeEfficient),
        ("memory_efficient", KrVariant::MemoryEfficient),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    KrKMeans::new(vec![8, 8])
                        // Reproduce the paper's Algorithm 1: no warm-start candidate.
                        .with_warm_start(false)
                        .with_variant(variant)
                        .with_n_init(1)
                        .with_max_iter(2)
                        .with_seed(1)
                        .fit(&ds.data)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_prop61_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop61_update_pass");
    group.sample_size(10);
    let ds = kr_datasets::synthetic::blobs(2000, 16, 36, 1.0, 91);
    let labels: Vec<usize> = (0..2000).map(|i| i % 36).collect();
    for agg in [Aggregator::Sum, Aggregator::Product] {
        group.bench_function(format!("agg_{agg}"), |b| {
            b.iter(|| {
                let mut sets = vec![
                    Matrix::from_fn(6, 16, |i, j| (i + j) as f64 * 0.1 + 0.5),
                    Matrix::from_fn(6, 16, |i, j| (i * j + 1) as f64 * 0.05 + 0.5),
                ];
                prop61_update_pass(&ds.data, &labels, &mut sets, agg, 0);
                black_box(sets)
            });
        });
    }
    group.finish();
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    group.sample_size(10);
    for n in [50usize, 100] {
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i * 37 + j * 17) % 101) as f64).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| black_box(kr_metrics::hungarian::solve(&cost)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pairwise_sqdist,
    bench_kr_assignment_variants,
    bench_prop61_update,
    bench_hungarian
);
criterion_main!(benches);
