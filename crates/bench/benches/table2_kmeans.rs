//! Table 2: KR-k-Means-+ / KR-k-Means-x with two sets of h1, h2
//! protocentroids vs k-Means(h1+h2) and k-Means(h1*h2) on all 13
//! datasets. Reports ARI / ACC / NMI / inertia (normalized by
//! k-Means(h1h2)) and the parameter ratio.
//!
//! Paper headline: median inertia ratios 1.16 (KR-+), 1.29 (KR-x),
//! 1.44 (kM(h1+h2)); KR usually beats the same-parameter k-Means while
//! kM(h1h2) is the optimistic bound.

use kr_core::aggregator::Aggregator;
use kr_core::kmeans::KMeans;
use kr_core::kr_kmeans::KrKMeans;
use kr_datasets::table1::{Scale, Table1};
use kr_linalg::Matrix;
use kr_metrics::{
    adjusted_rand_index, normalized_mutual_information, unsupervised_clustering_accuracy,
};

struct Row {
    ari: f64,
    acc: f64,
    nmi: f64,
    inertia: f64,
}

fn eval(labels: &[usize], truth: &[usize], inertia: f64) -> Row {
    Row {
        ari: adjusted_rand_index(labels, truth).unwrap(),
        acc: unsupervised_clustering_accuracy(labels, truth).unwrap(),
        nmi: normalized_mutual_information(labels, truth).unwrap(),
        inertia,
    }
}

/// Caps the sample count for the single-core bench environment.
fn cap_rows(data: &Matrix, labels: &[usize], cap: usize) -> (Matrix, Vec<usize>) {
    if data.nrows() <= cap {
        return (data.clone(), labels.to_vec());
    }
    let stride = data.nrows() as f64 / cap as f64;
    let idx: Vec<usize> = (0..cap).map(|i| (i as f64 * stride) as usize).collect();
    (
        data.select_rows(&idx),
        idx.iter().map(|&i| labels[i]).collect(),
    )
}

fn main() {
    let n_init = 3;
    let max_iter = 40;
    let cap = kr_bench::scaled(800, 200);
    println!("=== Table 2: KR-k-Means vs k-Means on the 13 evaluation datasets ===");
    println!("(reduced scale: n capped at {cap}, {n_init} restarts, {max_iter} iterations)\n");
    println!(
        "{:<16}{:>7}{:>7}  {:>6}{:>6}{:>6}{:>6}  {:>6}{:>6}{:>6}{:>6}  {:>6}{:>6}{:>6}{:>6}  {:>7}",
        "dataset",
        "k",
        "h1+h2",
        "ARI+",
        "ACC+",
        "NMI+",
        "In+",
        "ARIx",
        "ACCx",
        "NMIx",
        "Inx",
        "ARIs",
        "ACCs",
        "NMIs",
        "Ins",
        "Params"
    );
    for ds_id in Table1::ALL {
        let loaded = ds_id.load(Scale::Reduced, 7);
        let (data, truth) = cap_rows(&loaded.data, &loaded.labels, cap);
        let k = ds_id.n_clusters();
        let (h1, h2) = ds_id.factor_pair();
        let kr_sum = KrKMeans::new(vec![h1, h2])
            // Reproduce the paper's Algorithm 1: no warm-start candidate.
            .with_warm_start(false)
            .with_aggregator(Aggregator::Sum)
            .with_n_init(n_init)
            .with_max_iter(max_iter)
            .with_seed(3)
            .fit(&data)
            .unwrap();
        let kr_prod = KrKMeans::new(vec![h1, h2])
            // Reproduce the paper's Algorithm 1: no warm-start candidate.
            .with_warm_start(false)
            .with_aggregator(Aggregator::Product)
            .with_n_init(n_init)
            .with_max_iter(max_iter)
            .with_seed(3)
            .fit(&data)
            .unwrap();
        let km_small = KMeans::new(h1 + h2)
            .with_n_init(n_init)
            .with_max_iter(max_iter)
            .with_seed(3)
            .fit(&data)
            .unwrap();
        let km_full = KMeans::new(k)
            .with_n_init(n_init)
            .with_max_iter(max_iter)
            .with_seed(3)
            .fit(&data)
            .unwrap();
        let base = km_full.inertia.max(1e-12);
        let rows = [
            eval(&kr_sum.labels, &truth, kr_sum.inertia / base),
            eval(&kr_prod.labels, &truth, kr_prod.inertia / base),
            eval(&km_small.labels, &truth, km_small.inertia / base),
        ];
        let params = (h1 + h2) as f64 / k as f64;
        print!("{:<16}{:>7}{:>7}", ds_id.name(), k, h1 + h2);
        for r in &rows {
            print!(
                "  {:>6.2}{:>6.2}{:>6.2}{:>6.2}",
                r.ari, r.acc, r.nmi, r.inertia
            );
        }
        println!("  {params:>7.2}");
    }
    println!(
        "\nColumns: '+' = KR-k-Means-+(h1+h2), 'x' = KR-k-Means-x(h1+h2), \
         's' = k-Means(h1+h2); inertia normalized by k-Means(h1h2)."
    );
    println!(
        "Expected shape (paper Table 2): KR variants track or beat k-Means(h1+h2); \
         normalized inertia ratios cluster in 1.0-1.7 for KR vs larger spikes for kM(h1+h2) \
         on structured data (stickfigures, Blobs, R15); Params matches the paper column exactly."
    );
}
