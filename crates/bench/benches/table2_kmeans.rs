//! Table 2: KR-k-Means-+ / KR-k-Means-x with two sets of h1, h2
//! protocentroids vs k-Means(h1+h2) and k-Means(h1*h2) on all 13
//! datasets, plus the external Rk-means and NNK-Means summarization
//! baselines at the same `h1+h2` vector budget. Reports ARI / ACC / NMI
//! / inertia (normalized by k-Means(h1h2)) and the parameter ratio.
//!
//! Paper headline: median inertia ratios 1.16 (KR-+), 1.29 (KR-x),
//! 1.44 (kM(h1+h2)); KR usually beats the same-parameter k-Means while
//! kM(h1h2) is the optimistic bound.

use kr_core::aggregator::Aggregator;
use kr_core::baselines::{NnkMeans, RkMeans};
use kr_core::kmeans::KMeans;
use kr_core::kr_kmeans::KrKMeans;
use kr_datasets::table1::{Scale, Table1};
use kr_linalg::Matrix;
use kr_metrics::{evaluate_external, ExternalScores};

/// Caps the sample count for the single-core bench environment.
fn cap_rows(data: &Matrix, labels: &[usize], cap: usize) -> (Matrix, Vec<usize>) {
    if data.nrows() <= cap {
        return (data.clone(), labels.to_vec());
    }
    let stride = data.nrows() as f64 / cap as f64;
    let idx: Vec<usize> = (0..cap).map(|i| (i as f64 * stride) as usize).collect();
    (
        data.select_rows(&idx),
        idx.iter().map(|&i| labels[i]).collect(),
    )
}

fn print_scores(s: &ExternalScores, norm_inertia: f64) {
    print!(
        "  {:>6.2}{:>6.2}{:>6.2}{:>6.2}",
        s.ari, s.acc, s.nmi, norm_inertia
    );
}

fn main() {
    let n_init = 3;
    let max_iter = 40;
    let cap = kr_bench::scaled(800, 200);
    println!("=== Table 2: KR-k-Means vs k-Means and external baselines on the 13 datasets ===");
    println!("(reduced scale: n capped at {cap}, {n_init} restarts, {max_iter} iterations)\n");
    println!(
        "{:<16}{:>7}{:>7}  {:>6}{:>6}{:>6}{:>6}  {:>6}{:>6}{:>6}{:>6}  {:>6}{:>6}{:>6}{:>6}  {:>6}{:>6}{:>6}{:>6}  {:>6}{:>6}{:>6}{:>6}  {:>7}",
        "dataset",
        "k",
        "h1+h2",
        "ARI+",
        "ACC+",
        "NMI+",
        "In+",
        "ARIx",
        "ACCx",
        "NMIx",
        "Inx",
        "ARIs",
        "ACCs",
        "NMIs",
        "Ins",
        "ARIr",
        "ACCr",
        "NMIr",
        "Inr",
        "ARIn",
        "ACCn",
        "NMIn",
        "Inn",
        "Params"
    );
    for ds_id in Table1::ALL {
        let loaded = ds_id.load(Scale::Reduced, 7);
        let (data, truth) = cap_rows(&loaded.data, &loaded.labels, cap);
        let k = ds_id.n_clusters();
        let (h1, h2) = ds_id.factor_pair();
        let kr_sum = KrKMeans::new(vec![h1, h2])
            // Reproduce the paper's Algorithm 1: no warm-start candidate.
            .with_warm_start(false)
            .with_aggregator(Aggregator::Sum)
            .with_n_init(n_init)
            .with_max_iter(max_iter)
            .with_seed(3)
            .fit(&data)
            .unwrap();
        let kr_prod = KrKMeans::new(vec![h1, h2])
            // Reproduce the paper's Algorithm 1: no warm-start candidate.
            .with_warm_start(false)
            .with_aggregator(Aggregator::Product)
            .with_n_init(n_init)
            .with_max_iter(max_iter)
            .with_seed(3)
            .fit(&data)
            .unwrap();
        let km_small = KMeans::new(h1 + h2)
            .with_n_init(n_init)
            .with_max_iter(max_iter)
            .with_seed(3)
            .fit(&data)
            .unwrap();
        let km_full = KMeans::new(k)
            .with_n_init(n_init)
            .with_max_iter(max_iter)
            .with_seed(3)
            .fit(&data)
            .unwrap();
        // External baselines at the same h1+h2 vector budget as the KR
        // variants (k-budget parity; EXPERIMENTS.md, "Baselines").
        let rk = RkMeans::new(h1 + h2)
            .with_n_init(n_init)
            .with_max_iter(max_iter)
            .with_seed(3)
            .fit(&data)
            .unwrap();
        let nnk = NnkMeans::new(h1 + h2)
            .with_n_init(n_init)
            .with_max_iter(max_iter)
            .with_seed(3)
            .fit(&data)
            .unwrap();
        let base = km_full.inertia.max(1e-12);
        let rows = [
            (&kr_sum.labels, kr_sum.inertia),
            (&kr_prod.labels, kr_prod.inertia),
            (&km_small.labels, km_small.inertia),
            (&rk.labels, rk.inertia),
            (&nnk.labels, nnk.inertia),
        ];
        let params = (h1 + h2) as f64 / k as f64;
        print!("{:<16}{:>7}{:>7}", ds_id.name(), k, h1 + h2);
        for (labels, inertia) in rows {
            let scores = evaluate_external(labels, &truth).unwrap();
            print_scores(&scores, inertia / base);
        }
        println!("  {params:>7.2}");
    }
    println!(
        "\nColumns: '+' = KR-k-Means-+(h1+h2), 'x' = KR-k-Means-x(h1+h2), \
         's' = k-Means(h1+h2), 'r' = Rk-means(h1+h2), 'n' = NNK-Means(h1+h2); \
         inertia normalized by k-Means(h1h2)."
    );
    println!(
        "Expected shape (paper Table 2): KR variants track or beat k-Means(h1+h2); \
         normalized inertia ratios cluster in 1.0-1.7 for KR vs larger spikes for kM(h1+h2) \
         on structured data (stickfigures, Blobs, R15); Params matches the paper column exactly. \
         Rk-means lands near kM(h1+h2) (it optimizes the same objective on a grid-compressed \
         set); NNK-Means single-atom inertia runs higher because its objective is sparse \
         reconstruction, not point-to-centroid distance."
    );
}
