//! Figure 10 / case study 2: inertia vs server->client communication
//! for FkM and KR-FkM on federated glyph-pair data — now measured from
//! the frames a real transport carries, and runnable over loopback TCP
//! with one thread per client standing in for a remote process.
//!
//! Parity reading: both algorithms broadcast the *same number of
//! vectors per round* (20). FkM spends them on 20 free centroids;
//! KR-FkM aggregates 10 + 10 protocentroids into a 100-centroid grid —
//! so at every communication budget KR summarizes with 5x more
//! centroids. On the 100-cluster glyph-pair data this is the regime the
//! paper plots: KR-FkM consistently lower inertia at parity cost,
//! with the largest gap at the smallest budget.
//!
//! The byte counters are no longer closed-form arithmetic: every value
//! comes from `wire::FrameInfo` measurements of the frames the
//! transport actually moved. The *transport matrix* section then sweeps
//! rounds x clients x algorithm over both backends and asserts the
//! loopback-TCP run is bitwise identical to the in-process run —
//! centroids, history, and byte counts.
//!
//! Substitution note (DESIGN.md §4): the paper's FEMNIST handwriting is
//! replaced by double-glyph images whose 100 clusters are digit-pair
//! compositions — additively Khatri-Rao-structured, so the sum
//! aggregator replaces the paper's product.

use kr_core::aggregator::Aggregator;
use kr_federated::server::{Algo, FederatedServer, Resilience};
use kr_federated::transport::tcp::{serve_shard, TcpServer};
use kr_federated::{
    faults, global_inertia_with, shard_by_assignment, Client, FaultPlan, FederatedModel, FkM, KrFkM,
};
use kr_linalg::ExecCtx;
use std::sync::Arc;
use std::time::Duration;

fn run_over_tcp(
    server: &FederatedServer,
    clients: &[Client],
    plan: Option<&Arc<FaultPlan>>,
    exec: &ExecCtx,
) -> FederatedModel {
    let listener = TcpServer::bind_loopback().expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let handles: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(id, c)| {
            let data = c.data.clone();
            std::thread::spawn(move || {
                // Under fault injection the server may drop the channel
                // early; a client-side transport error is expected then.
                let _ = serve_shard(addr, id as u32, &data, ExecCtx::serial());
            })
        })
        .collect();
    let conns = listener
        .accept_clients(clients.len(), Duration::from_secs(60))
        .expect("accept clients");
    let model = match plan {
        Some(plan) => server.drive(faults::wrap(plan, conns), exec),
        None => server.drive(conns, exec),
    }
    .expect("drive");
    for h in handles {
        h.join().expect("client thread");
    }
    model
}

fn bitwise_equal(a: &FederatedModel, b: &FederatedModel) -> bool {
    a.centroids.shape() == b.centroids.shape()
        && a.centroids
            .as_slice()
            .iter()
            .zip(b.centroids.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
        && a.history.len() == b.history.len()
        && a.history.iter().zip(b.history.iter()).all(|(x, y)| {
            x.downlink_bytes == y.downlink_bytes
                && x.uplink_bytes == y.uplink_bytes
                && x.inertia.to_bits() == y.inertia.to_bits()
        })
        && a.wire == b.wire
}

fn main() {
    let n = kr_bench::scaled(1200, 600);
    let ds = kr_datasets::image::double_mnist_like(n, 3);
    let client_of: Vec<usize> = (0..n).map(|i| i % 10).collect();
    let clients: Vec<Client> = shard_by_assignment(&ds.data, &client_of, 10);
    let exec = ExecCtx::threaded(4);

    let rounds = 8;
    let fkm = FkM {
        k: 20,
        rounds,
        seed: 1,
    }
    .run_with(&clients, &exec)
    .unwrap();
    let kr = KrFkM {
        hs: vec![10, 10],
        aggregator: Aggregator::Sum,
        rounds,
        seed: 1,
    }
    .run_with(&clients, &exec)
    .unwrap();

    println!("=== Figure 10: inertia vs measured server->client bytes (glyph pairs, n = {n}) ===");
    println!("(both broadcast 20 vectors/round; KR's 20 vectors span 100 centroids)\n");
    println!(
        "{:>8}{:>14}{:>12}{:>12}{:>9}",
        "round", "down (MB)", "FkM", "KR-FkM", "ratio"
    );
    let mut wins = 0usize;
    let mut worst_ratio = f64::INFINITY;
    let mut best_ratio: f64 = 0.0;
    for (f, k) in fkm.history.iter().zip(kr.history.iter()) {
        assert_eq!(f.downlink_bytes, k.downlink_bytes, "parity by construction");
        let ratio = f.inertia / k.inertia;
        if k.inertia <= f.inertia {
            wins += 1;
        }
        worst_ratio = worst_ratio.min(ratio);
        best_ratio = best_ratio.max(ratio);
        println!(
            "{:>8}{:>14.2}{:>12.1}{:>12.1}{:>9.2}",
            f.round,
            f.downlink_bytes as f64 / (1024.0 * 1024.0),
            f.inertia,
            k.inertia,
            ratio
        );
    }
    println!(
        "\nKR-FkM lower inertia in {wins}/{rounds} budget points; \
         FkM/KR inertia ratio in [{worst_ratio:.2}, {best_ratio:.2}] \
         (paper: KR consistently lower, up to ~5x at the smallest budget)."
    );
    // The protocol's client-reported inertia must agree with a direct
    // chunk-parallel evaluation of the final grids.
    for (name, model) in [("FkM", &fkm), ("KR-FkM", &kr)] {
        let direct = global_inertia_with(&clients, &model.centroids, &exec);
        let reported = model.history.last().unwrap().inertia;
        assert!(
            (direct - reported).abs() <= 1e-6 * direct.abs().max(1.0),
            "{name}: reported {reported} vs direct {direct}"
        );
    }
    for (name, model) in [("FkM", &fkm), ("KR-FkM", &kr)] {
        let stat_down = model.history.last().unwrap().downlink_bytes;
        println!(
            "{name}: accounted downlink {:.2} MB; full frame traffic {:.2} MB down / {:.2} MB up \
             ({} frames down, {} up; overhead = framing + bootstrap + acks + eval)",
            stat_down as f64 / (1024.0 * 1024.0),
            model.wire.frame_bytes_down as f64 / (1024.0 * 1024.0),
            model.wire.frame_bytes_up as f64 / (1024.0 * 1024.0),
            model.wire.frames_down,
            model.wire.frames_up,
        );
    }

    // ---- Transport matrix: in-process vs loopback TCP, sweeping
    // rounds x clients x algorithm. Every cell must be bitwise equal
    // across transports.
    println!("\n=== Transport matrix: local (in-process) vs tcp (loopback) ===");
    println!(
        "{:<10}{:>9}{:>8}{:>15}{:>16}{:>15}{:>10}",
        "algo", "clients", "rounds", "stats dn (KB)", "frames dn (KB)", "tcp == local", "tcp (s)"
    );
    let n_small = kr_bench::scaled(400, 200);
    let ds_small = kr_datasets::image::double_mnist_like(n_small, 5);
    for &n_clients in &[2usize, 5, 10] {
        let client_of: Vec<usize> = (0..n_small).map(|i| i % n_clients).collect();
        let shards = shard_by_assignment(&ds_small.data, &client_of, n_clients);
        for &rounds in &[4usize, 8] {
            for algo_name in ["FkM", "KR-FkM"] {
                let algo = match algo_name {
                    "FkM" => Algo::Fkm { k: 10 },
                    _ => Algo::KrFkm {
                        hs: vec![5, 2],
                        aggregator: Aggregator::Sum,
                    },
                };
                let server = FederatedServer::new(algo, rounds, 3);
                let local = server
                    .drive(
                        kr_federated::transport::local::connect_shards(&shards, &exec),
                        &exec,
                    )
                    .unwrap();
                let t0 = std::time::Instant::now();
                let tcp = run_over_tcp(&server, &shards, None, &exec);
                let tcp_s = t0.elapsed().as_secs_f64();
                let equal = bitwise_equal(&tcp, &local);
                assert!(
                    equal,
                    "{algo_name} x {n_clients} clients x {rounds} rounds diverged"
                );
                let last = local.history.last().unwrap();
                println!(
                    "{:<10}{:>9}{:>8}{:>15.1}{:>16.1}{:>15}{:>10.3}",
                    algo_name,
                    n_clients,
                    rounds,
                    last.downlink_bytes as f64 / 1024.0,
                    local.wire.frame_bytes_down as f64 / 1024.0,
                    if equal { "bitwise ✓" } else { "DIVERGED" },
                    tcp_s,
                );
            }
        }
    }
    println!(
        "\nEvery cell's loopback-TCP run reproduced the in-process run bit for bit \
         (centroids, per-round history, measured byte counters, frame totals)."
    );

    // ---- Failure axis: drop rate x clients under quorum rounds.
    // Every cell runs the same seeded FaultPlan over both transports
    // (bitwise-equal by contract, asserted) and reports how much
    // inertia the surviving merge gives up against the clean run, vs
    // how many upload bytes the dropped frames saved.
    println!("\n=== Failure axis: seeded drops under quorum rounds (KR-FkM) ===");
    println!(
        "{:<9}{:>10}{:>12}{:>14}{:>14}{:>13}{:>8}{:>15}",
        "clients",
        "drop",
        "inertia",
        "vs clean",
        "stats up(KB)",
        "saved(KB)",
        "stale",
        "tcp == local"
    );
    let fail_rounds = 6usize;
    for &n_clients in &[5usize, 10] {
        let client_of: Vec<usize> = (0..n_small).map(|i| i % n_clients).collect();
        let shards = shard_by_assignment(&ds_small.data, &client_of, n_clients);
        let mut clean_inertia = f64::NAN;
        let mut clean_up = 0usize;
        for &drop_rate in &[0.0f64, 0.1, 0.3, 0.5] {
            let plan = Arc::new(FaultPlan::seeded_drops(
                41,
                n_clients,
                fail_rounds,
                drop_rate,
            ));
            let server = FederatedServer::new(
                Algo::KrFkm {
                    hs: vec![5, 2],
                    aggregator: Aggregator::Sum,
                },
                fail_rounds,
                3,
            )
            .with_resilience(Resilience {
                quorum: Some(1),
                ..Resilience::default()
            });
            let local = server
                .drive(
                    faults::wrap(
                        &plan,
                        kr_federated::transport::local::connect_shards(&shards, &exec),
                    ),
                    &exec,
                )
                .unwrap();
            let tcp = run_over_tcp(&server, &shards, Some(&plan), &exec);
            let equal = bitwise_equal(&tcp, &local);
            assert!(
                equal,
                "failure axis diverged: {n_clients} clients at drop rate {drop_rate}"
            );
            let last = local.history.last().unwrap();
            if drop_rate == 0.0 {
                clean_inertia = last.inertia;
                clean_up = last.uplink_bytes;
            }
            // `frames_stale` counts late replies for already-closed
            // rounds — the direct wire cost of re-admitting shards that
            // missed a round, so the failure table must report it
            // alongside the byte savings instead of dropping it.
            println!(
                "{:<9}{:>10.0}{:>12.1}{:>13.2}x{:>14.1}{:>13.1}{:>8}{:>15}",
                n_clients,
                drop_rate * 100.0,
                last.inertia,
                last.inertia / clean_inertia,
                last.uplink_bytes as f64 / 1024.0,
                (clean_up.saturating_sub(last.uplink_bytes)) as f64 / 1024.0,
                local.wire.frames_stale,
                if equal { "bitwise ✓" } else { "DIVERGED" },
            );
        }
    }
    println!(
        "\nQuorum rounds stayed bitwise transport-invariant at every drop rate \
         (50% client loss included); dropped uploads trade inertia for bytes."
    );
}
