//! Figure 10 / case study 2: inertia vs server->client communication
//! for FkM and KR-FkM on federated glyph-pair data (10 clients).
//!
//! Parity reading: both algorithms broadcast the *same number of
//! vectors per round* (20). FkM spends them on 20 free centroids;
//! KR-FkM aggregates 10 + 10 protocentroids into a 100-centroid grid —
//! so at every communication budget KR summarizes with 5x more
//! centroids. On the 100-cluster glyph-pair data this is the regime the
//! paper plots: KR-FkM consistently lower inertia at parity cost,
//! with the largest gap at the smallest budget.
//!
//! Substitution note (DESIGN.md §4): the paper's FEMNIST handwriting is
//! replaced by double-glyph images whose 100 clusters are digit-pair
//! compositions — additively Khatri-Rao-structured, so the sum
//! aggregator replaces the paper's product.

use kr_core::aggregator::Aggregator;
use kr_federated::{shard_by_assignment, Client, FkM, KrFkM};

fn main() {
    let n = kr_bench::scaled(1200, 600);
    let ds = kr_datasets::image::double_mnist_like(n, 3);
    let client_of: Vec<usize> = (0..n).map(|i| i % 10).collect();
    let clients: Vec<Client> = shard_by_assignment(&ds.data, &client_of, 10);

    let rounds = 8;
    let fkm = FkM {
        k: 20,
        rounds,
        seed: 1,
    }
    .run(&clients)
    .unwrap();
    let kr = KrFkM {
        hs: vec![10, 10],
        aggregator: Aggregator::Sum,
        rounds,
        seed: 1,
    }
    .run(&clients)
    .unwrap();

    println!("=== Figure 10: inertia vs server->client bytes (glyph pairs, n = {n}) ===");
    println!("(both broadcast 20 vectors/round; KR's 20 vectors span 100 centroids)\n");
    println!(
        "{:>8}{:>14}{:>12}{:>12}{:>9}",
        "round", "down (MB)", "FkM", "KR-FkM", "ratio"
    );
    let mut wins = 0usize;
    let mut worst_ratio = f64::INFINITY;
    let mut best_ratio: f64 = 0.0;
    for (f, k) in fkm.history.iter().zip(kr.history.iter()) {
        assert_eq!(f.downlink_bytes, k.downlink_bytes, "parity by construction");
        let ratio = f.inertia / k.inertia;
        if k.inertia <= f.inertia {
            wins += 1;
        }
        worst_ratio = worst_ratio.min(ratio);
        best_ratio = best_ratio.max(ratio);
        println!(
            "{:>8}{:>14.2}{:>12.1}{:>12.1}{:>9.2}",
            f.round,
            f.downlink_bytes as f64 / (1024.0 * 1024.0),
            f.inertia,
            k.inertia,
            ratio
        );
    }
    println!(
        "\nKR-FkM lower inertia in {wins}/{rounds} budget points; \
         FkM/KR inertia ratio in [{worst_ratio:.2}, {best_ratio:.2}] \
         (paper: KR consistently lower, up to ~5x at the smallest budget)."
    );
}
