//! Assignment-pruning acceptance bench: the fig8 Lloyd loop with the
//! bounds-gated `AssignEngine` against the exhaustive scan.
//!
//! Two passes over the *same* centroid trajectory (the engine's bitwise
//! contract makes them identical by construction — asserted here):
//! one with pruning off, one with the auto-selected bound structure.
//! Only post-warmup iterations count (`WARMUP` = 2): the paper-relevant
//! regime is the long tail of near-converged iterations where drift is
//! small and bounds certify almost every point.
//!
//! Persists `BENCH_assign.json`: one record per leg with the measured
//! distance-evaluation reduction and wall-clock speedup next to the
//! committed floors (≥ 3x fewer distance evals, ≥ 2x wall-clock at
//! k >= 64 — the ISSUE 9 acceptance criteria).

use kr_core::assign::AssignEngine;
use kr_core::kmeans::KMeans;
use kr_linalg::{ops, ExecCtx, Matrix, PruneMode};
use std::time::Instant;

const WARMUP: usize = 2;
const MEASURED: usize = 10;
const FLOOR_DIST_REDUCTION: f64 = 3.0;
const FLOOR_WALLCLOCK: f64 = 2.0;

/// Plain Lloyd update: cluster means, empty clusters keep their row
/// (no RNG — both passes must see the exact same trajectory).
fn update(data: &Matrix, labels: &[usize], centroids: &mut Matrix) {
    let (k, m) = centroids.shape();
    let mut sums = vec![0.0f64; k * m];
    let mut counts = vec![0usize; k];
    for (i, &l) in labels.iter().enumerate() {
        ops::add_assign(&mut sums[l * m..(l + 1) * m], data.row(i));
        counts[l] += 1;
    }
    for (c, &cnt) in counts.iter().enumerate() {
        if cnt == 0 {
            continue;
        }
        let inv = 1.0 / cnt as f64;
        for (cv, &sv) in centroids
            .row_mut(c)
            .iter_mut()
            .zip(&sums[c * m..(c + 1) * m])
        {
            *cv = sv * inv;
        }
    }
}

struct LegResult {
    leg: String,
    n: usize,
    m: usize,
    k: usize,
    dists_exhaustive: u64,
    dists_computed: u64,
    dists_skipped: u64,
    dist_reduction: f64,
    wall_speedup: f64,
    /// Mean post-warmup assignment time per iteration, pruned pass.
    assign_ns_on: f64,
}

/// One Lloyd trajectory in the given mode; returns the post-warmup
/// assignment seconds, the post-warmup `PruneStats`, and the final
/// labels (for the cross-pass bitwise assertion).
fn run_pass(
    data: &Matrix,
    init: &Matrix,
    mode: PruneMode,
) -> (f64, kr_core::assign::PruneStats, Vec<usize>, Vec<u64>) {
    let n = data.nrows();
    let exec = ExecCtx::serial().with_prune_mode(mode);
    let mut engine = AssignEngine::new(&exec);
    engine.begin_fit(data);
    engine.begin_restart();
    let mut centroids = init.clone();
    let mut labels = vec![0usize; n];
    let mut dmin = vec![0.0f64; n];
    let mut assign_secs = 0.0;
    for it in 0..(WARMUP + MEASURED) {
        let t0 = Instant::now();
        engine.assign_dense(data, &centroids, &mut labels, &mut dmin);
        let dt = t0.elapsed().as_secs_f64();
        if it == WARMUP - 1 {
            // Reset the counters: only post-warmup iterations count.
            let _ = engine.take_stats();
        }
        if it >= WARMUP {
            assign_secs += dt;
        }
        update(data, &labels, &mut centroids);
    }
    let stats = engine.take_stats();
    let dmin_bits: Vec<u64> = dmin.iter().map(|d| d.to_bits()).collect();
    (assign_secs, stats, labels, dmin_bits)
}

fn run_leg(leg: &str, n: usize, m: usize, k: usize, seed: u64) -> LegResult {
    let ds = kr_datasets::synthetic::blobs(n, m, k, 1.0, seed);
    // Deterministic spread seeding (every n/k-th point), shared by both
    // passes; KMeans++ would draw RNG and is irrelevant to the loop.
    let init = Matrix::from_fn(k, m, |c, j| ds.data.get(c * (n / k), j));
    let (t_off, _, labels_off, bits_off) = run_pass(&ds.data, &init, PruneMode::Off);
    let (t_on, stats, labels_on, bits_on) = run_pass(&ds.data, &init, PruneMode::Auto);
    assert_eq!(labels_off, labels_on, "{leg}: pruning changed labels");
    assert_eq!(bits_off, bits_on, "{leg}: pruning changed distance bits");
    let dists_exhaustive = (n as u64) * (k as u64) * (MEASURED as u64);
    LegResult {
        leg: leg.to_string(),
        n,
        m,
        k,
        dists_exhaustive,
        dists_computed: stats.dists_computed,
        dists_skipped: stats.dists_skipped,
        dist_reduction: dists_exhaustive as f64 / stats.dists_computed.max(1) as f64,
        wall_speedup: t_off / t_on,
        assign_ns_on: t_on / MEASURED as f64 * 1e9,
    }
}

fn main() {
    println!("=== Assignment pruning: fig8 Lloyd loop, post-warmup iterations ===");
    println!(
        "{:<22}{:>8}{:>6}{:>6}{:>14}{:>14}{:>12}{:>10}",
        "leg", "n", "m", "k", "dists(off)", "dists(on)", "dist-redux", "wall-x"
    );
    let legs = [
        // Auto resolves to Elkan here (k <= 96, k^2 <= n, k <= 4m).
        run_leg("elkan_k64", kr_bench::scaled(6000, 1200), 32, 64, 70),
        // Auto resolves to Hamerly (k > 96) — the fig8 kM(h1h2) shape.
        run_leg("hamerly_k100", kr_bench::scaled(8000, 1600), 20, 100, 71),
        // Larger k, still Hamerly: the memory-lean mode must scale.
        run_leg("hamerly_k128", kr_bench::scaled(8000, 1600), 20, 128, 72),
    ];
    let mut records = Vec::new();
    for r in legs.iter() {
        println!(
            "{:<22}{:>8}{:>6}{:>6}{:>14}{:>14}{:>12.1}{:>10.2}",
            r.leg,
            r.n,
            r.m,
            r.k,
            r.dists_exhaustive,
            r.dists_computed,
            r.dist_reduction,
            r.wall_speedup
        );
        assert!(
            r.dist_reduction >= FLOOR_DIST_REDUCTION,
            "{}: distance-eval reduction {:.2}x below the {FLOOR_DIST_REDUCTION}x floor",
            r.leg,
            r.dist_reduction
        );
        assert!(
            r.wall_speedup >= FLOOR_WALLCLOCK,
            "{}: wall-clock speedup {:.2}x below the {FLOOR_WALLCLOCK}x floor",
            r.leg,
            r.wall_speedup
        );
        records.push(
            kr_bench::bench_json::Record::new("assign_pruning", &r.leg, r.assign_ns_on)
                .with_shape(format!("{}x{}, k={}", r.n, r.m, r.k))
                .with("n", r.n)
                .with("m", r.m)
                .with("k", r.k)
                .with("iters_measured", MEASURED)
                .with("dists_exhaustive", r.dists_exhaustive)
                .with("dists_computed", r.dists_computed)
                .with("dists_skipped", r.dists_skipped)
                .with("dist_eval_reduction", r.dist_reduction)
                .with("wallclock_speedup", r.wall_speedup)
                .with("floor_dist_reduction", FLOOR_DIST_REDUCTION)
                .with("floor_wallclock", FLOOR_WALLCLOCK),
        );
    }
    kr_bench::bench_json::write("BENCH_assign.json", &records).expect("write BENCH_assign.json");
    println!("all floors met across {} legs", legs.len());

    // Sanity context: a whole KMeans fit with pruning on vs. off (not
    // part of the floors — restart seeding and update time dilute the
    // assignment win, but the skip ratio should stay visible).
    let ds = kr_datasets::synthetic::blobs(kr_bench::scaled(4000, 800), 16, 64, 1.0, 73);
    let fit = |mode: PruneMode| {
        let t0 = Instant::now();
        let model = KMeans::new(64)
            .with_n_init(1)
            .with_max_iter(WARMUP + MEASURED)
            .with_exec(ExecCtx::serial().with_prune_mode(mode))
            .fit(&ds.data)
            .unwrap();
        (model, t0.elapsed().as_secs_f64())
    };
    let (off, t_off) = fit(PruneMode::Off);
    let (on, t_on) = fit(PruneMode::Auto);
    assert_eq!(off.labels, on.labels, "full-fit labels must not change");
    assert_eq!(off.inertia.to_bits(), on.inertia.to_bits());
    println!(
        "full fit k=64: {:.3}s off vs {:.3}s on ({:.2}x), skip ratio {:.1}%",
        t_off,
        t_on,
        t_off / t_on,
        100.0 * on.prune_stats.skip_ratio()
    );
}
