//! Streaming scalability: inertia-vs-batch convergence and peak heap of
//! the `kr-stream` summarizers across batch size × representative
//! budget × pool workers, against the batch `KrKMeans` reference on the
//! same (chunk-replayed) data.
//!
//! This is the new subsystem's counterpart of Figure 8: where fig8 shows
//! the batch algorithms' space advantage as the centroid count grows,
//! this harness shows that the *streaming* summarizers keep a bounded
//! working set as the stream grows — `MiniBatchKrKMeans` holds
//! `O((Σ h_l + ∏ h_l) m)` state and `CoresetTree` at most its
//! representative bound — while landing within the documented
//! batch-parity factor (EXPERIMENTS.md "Streaming") of the resident-data
//! fit. The workers axis re-runs one configuration at 1/2/4/8 pool
//! workers; results are bitwise identical (CI-enforced by the
//! `exec_determinism_*` tests), so only wall-clock may move.

// Peak-memory reporting: without this, kr_bench::measure sees no heap.
kr_bench::install_counting_allocator!();

use kr_bench::{measure, mib};
use kr_core::kr_kmeans::KrKMeans;
use kr_datasets::stream::ChunkedReplay;
use kr_linalg::{ExecCtx, Matrix};
use kr_stream::{CoresetTree, MiniBatchKrKMeans, StreamSummarizer};

fn stream_minibatch(data: &Matrix, batch: usize, exec: &ExecCtx) -> kr_stream::MiniBatchKrModel {
    let mut mb = MiniBatchKrKMeans::new(vec![3, 3])
        .with_seed(7)
        .with_exec(exec.clone());
    for b in ChunkedReplay::new(data, batch, 3) {
        mb.observe(&b).unwrap();
    }
    mb.finalize().unwrap()
}

fn stream_coreset(
    data: &Matrix,
    batch: usize,
    budget: usize,
    exec: &ExecCtx,
) -> (kr_stream::CoresetModel, usize) {
    let mut tree = CoresetTree::new(9, budget)
        .with_leaf_size(2 * budget)
        .with_seed(7)
        .with_exec(exec.clone());
    for b in ChunkedReplay::new(data, batch, 3) {
        tree.observe(&b).unwrap();
    }
    let bound = tree.representative_bound();
    (tree.finalize().unwrap(), bound)
}

fn main() {
    println!("=== Streaming scalability: inertia vs batch KrKMeans, peak heap ===");
    let n = kr_bench::scaled(4000, 600);
    let ds = kr_datasets::synthetic::blobs(n, 8, 9, 0.5, 80);
    let serial = ExecCtx::serial();

    // Batch reference: the resident-data fit every stream is compared
    // against (warm start off so heap reflects Algorithm 1 alone).
    let (reference, t_ref, p_ref) = measure(|| {
        KrKMeans::new(vec![3, 3])
            .with_n_init(2)
            .with_seed(7)
            .with_warm_start(false)
            .fit(&ds.data)
            .unwrap()
    });
    let ref_inertia = reference.inertia;
    println!(
        "batch KrKMeans(3x3): inertia {ref_inertia:.1}  {t_ref:.3}s  {:.1} MiB (n={n})\n",
        mib(p_ref)
    );

    // --- Batch-size axis (mini-batch KR): convergence telemetry.
    println!(
        "{:<18}{:>12}{:>10}{:>10}{:>10}{:>12}",
        "minibatch", "inertia", "ratio", "secs", "MiB", "last-batch"
    );
    for batch in [125usize, 250, 500, 1000] {
        let (model, t, p) = measure(|| stream_minibatch(&ds.data, batch, &serial));
        let inertia = kr_metrics::inertia(&ds.data, &model.centroids());
        let last = model.last_batch_inertia;
        println!(
            "batch={batch:<12}{inertia:>12.1}{:>10.3}{t:>10.3}{:>10.1}{last:>12.1}",
            inertia / ref_inertia,
            mib(p)
        );
        std::hint::black_box(&model);
    }

    // --- Budget axis (coreset tree): bound vs peak representatives.
    println!(
        "\n{:<18}{:>12}{:>10}{:>10}{:>10}{:>8}{:>8}",
        "coreset", "inertia", "ratio", "secs", "MiB", "peak", "bound"
    );
    for budget in [18usize, 36, 72, 144] {
        let (out, t, p) = measure(|| stream_coreset(&ds.data, 500, budget, &serial));
        let (model, bound) = out;
        let inertia = kr_metrics::inertia(&ds.data, &model.centroids);
        assert!(
            model.peak_representatives <= bound,
            "bound violated: {} > {bound}",
            model.peak_representatives
        );
        println!(
            "budget={budget:<11}{inertia:>12.1}{:>10.3}{t:>10.3}{:>10.1}{:>8}{bound:>8}",
            inertia / ref_inertia,
            mib(p),
            model.peak_representatives
        );
        std::hint::black_box(&model);
    }

    // --- Workers axis: same streams at 1/2/4/8 pool workers. The
    // summaries are bitwise identical at every budget (deterministic
    // chunk geometry); only wall-clock may change.
    println!(
        "\n{:<12}{:>14}{:>14}",
        "workers", "minibatch s", "coreset s"
    );
    let reference_sets = stream_minibatch(&ds.data, 500, &serial).protocentroids;
    for workers in [1usize, 2, 4, 8] {
        let exec = ExecCtx::threaded(workers);
        let (mb, t_mb, _) = measure(|| stream_minibatch(&ds.data, 500, &exec));
        assert_eq!(mb.protocentroids, reference_sets, "workers={workers}");
        let (co, t_co, _) = measure(|| stream_coreset(&ds.data, 500, 36, &exec));
        std::hint::black_box(&co);
        println!("{workers:<12}{t_mb:>14.3}{t_co:>14.3}");
    }

    println!(
        "\nExpected shape: streaming inertia stays within the documented \
         batch-parity factor (EXPERIMENTS.md \"Streaming\") at every batch \
         size; the mini-batch summarizer's heap is flat in n (state is \
         protocentroids + sufficient statistics) and the coreset tree's \
         peak representative count tracks its budget·levels bound, not the \
         stream length. On the workers axis the summaries are bit-identical \
         and wall-clock falls toward the core count."
    );
}
