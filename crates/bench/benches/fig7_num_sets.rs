//! Figure 7: inertia as a function of the number of protocentroid sets
//! `p` at a fixed budget of 12 vectors, on Blobs and Classification
//! (100 ground-truth clusters). Baselines use h1 = h2 = 6.
//!
//! Paper headline: inertia decreases monotonically in `p` (with
//! diminishing returns); KR with 12 vectors can beat k-Means with 36.

use kr_core::aggregator::Aggregator;
use kr_core::design::balanced_budget_split;
use kr_core::kmeans::KMeans;
use kr_core::kr_kmeans::KrKMeans;
use kr_core::naive::NaiveKr;

fn main() {
    let n = kr_bench::scaled(1500, 400);
    println!("=== Figure 7: inertia vs number of protocentroid sets (budget 12, n = {n}) ===");
    for maker in ["Blobs", "Classification"] {
        let ds = match maker {
            "Blobs" => kr_datasets::synthetic::blobs(n, 2, 100, 1.0, 61).standardized(),
            _ => kr_datasets::synthetic::classification(n, 10, 100, 61).standardized(),
        };
        println!("\n--- {maker} ---");
        let n_init = 4;
        let naive = NaiveKr::new(vec![6, 6])
            .with_kmeans_n_init(2)
            .with_decomp_max_iter(500)
            .with_seed(2)
            .fit(&ds.data)
            .unwrap();
        let km_small = KMeans::new(12)
            .with_n_init(n_init)
            .with_seed(2)
            .fit(&ds.data)
            .unwrap();
        let km_full = KMeans::new(36)
            .with_n_init(n_init)
            .with_seed(2)
            .fit(&ds.data)
            .unwrap();
        println!(
            "  baselines: Naive-x {:.1} | kM(12) {:.1} | kM(36) {:.1}",
            naive.inertia, km_small.inertia, km_full.inertia
        );
        for p in [2usize, 3, 4] {
            let hs = balanced_budget_split(12, p);
            let k: usize = hs.iter().product();
            for agg in [Aggregator::Sum, Aggregator::Product] {
                let kr = KrKMeans::new(hs.clone())
                    // Reproduce the paper's Algorithm 1: no warm-start candidate.
                    .with_warm_start(false)
                    .with_aggregator(agg)
                    .with_n_init(n_init)
                    .with_seed(2)
                    .fit(&ds.data)
                    .unwrap();
                println!(
                    "  p = {p} (hs = {hs:?}, {k} centroids): KR-{agg} inertia {:.1}",
                    kr.inertia
                );
            }
        }
    }
    println!(
        "\nExpected shape (paper Fig. 7): KR inertia decreases as p grows \
         (12 vectors represent 36 -> 64 -> 81 centroids), with diminishing reductions."
    );
}
