//! Figure 2: relative percentage change in parameter count and
//! unsupervised clustering accuracy of the Khatri-Rao variants relative
//! to their baselines (k-Means, DKM, IDEC) on Blobs and optdigits.
//!
//! Paper headline: large negative parameter change (up to -85%) with
//! near-zero accuracy change.

use kr_core::aggregator::Aggregator;
use kr_core::kmeans::KMeans;
use kr_core::kr_kmeans::KrKMeans;
use kr_deep::autoencoder::{Autoencoder, Compression};
use kr_deep::DeepClustering;
use kr_metrics::unsupervised_clustering_accuracy as acc;

fn pct(new: f64, old: f64) -> f64 {
    100.0 * (new - old) / old
}

fn main() {
    let n_blobs = kr_bench::scaled(1000, 300);
    let n_opt = kr_bench::scaled(500, 200);
    println!("=== Figure 2: relative % change (KR variant vs baseline) ===\n");
    println!(
        "{:<14}{:<12}{:>12}{:>12}",
        "dataset", "baseline", "params %", "accuracy %"
    );
    for name in ["Blobs", "optdigits"] {
        let (ds, k, hs) = if name == "Blobs" {
            (
                kr_datasets::synthetic::blobs(n_blobs, 2, 100, 1.0, 80).standardized(),
                100usize,
                vec![10usize, 10],
            )
        } else {
            (
                kr_datasets::image::optdigits_like(n_opt, 80).standardized(),
                10usize,
                vec![5usize, 2],
            )
        };
        let m = ds.data.ncols();
        let budget: usize = hs.iter().sum();

        // --- k-Means vs KR-k-Means.
        let km = KMeans::new(k)
            .with_n_init(3)
            .with_max_iter(40)
            .with_seed(4)
            .fit(&ds.data)
            .unwrap();
        let kr = KrKMeans::new(hs.clone())
            // Reproduce the paper's Algorithm 1: no warm-start candidate.
            .with_warm_start(false)
            .with_n_init(3)
            .with_max_iter(40)
            .with_seed(4)
            .fit(&ds.data)
            .unwrap();
        let km_acc = acc(&km.labels, &ds.labels).unwrap();
        let kr_acc = acc(&kr.labels, &ds.labels).unwrap();
        println!(
            "{:<14}{:<12}{:>12.1}{:>12.1}",
            name,
            "k-Means",
            pct((budget * m) as f64, (k * m) as f64),
            pct(kr_acc, km_acc)
        );

        // --- DKM / IDEC vs their KR variants (reduced deep stack).
        let dims = [m, 128, 64, 8.min(m)];
        let pre = kr_bench::scaled(10, 3);
        let ep = kr_bench::scaled(10, 3);
        let mut full_ae = Autoencoder::new(&dims, Compression::None, 5).unwrap();
        full_ae.pretrain(&ds.data, pre, 128, 1e-3, 6);
        let full_rec = full_ae.reconstruction_loss(&ds.data);
        let (comp_ae, _) = kr_deep::autoencoder::pretrain_compressed_matching(
            &ds.data, &dims, 2, 2, full_rec, pre, 128, 1e-3, 1, 7,
        )
        .unwrap();
        for (bname, base, kr_trainer) in [
            (
                "DKM",
                DeepClustering::dkm(k),
                DeepClustering::kr_dkm(hs.clone(), Aggregator::Sum),
            ),
            (
                "IDEC",
                DeepClustering::idec(k),
                DeepClustering::kr_idec(hs.clone(), Aggregator::Sum),
            ),
        ] {
            let fit = |t: DeepClustering, ae: &Autoencoder| {
                t.with_epochs(ep)
                    .with_batch_size(128)
                    .with_lr(1e-3)
                    .with_init_n_init(3)
                    .with_seed(8)
                    .fit(ae.clone(), &ds.data)
                    .unwrap()
            };
            let b = fit(base, &full_ae);
            let krm = fit(kr_trainer, &comp_ae);
            let b_acc = acc(&b.labels, &ds.labels).unwrap();
            let k_acc = acc(&krm.labels, &ds.labels).unwrap();
            println!(
                "{:<14}{:<12}{:>12.1}{:>12.1}",
                name,
                bname,
                pct(krm.n_parameters() as f64, b.n_parameters() as f64),
                pct(k_acc, b_acc)
            );
        }
    }
    println!(
        "\nExpected shape (paper Fig. 2): parameter change strongly negative for \
         every KR variant, accuracy change hovering near zero."
    );
}
