//! Table 3: IDEC / KR-IDEC / DKM / KR-DKM on the 13 datasets, reporting
//! ARI / ACC / NMI and the parameter ratio of the KR variants.
//!
//! Paper headline: KR deep clustering reduces parameters by 12-85%
//! (ratios 0.15-0.88 per dataset) at comparable accuracy; on some
//! datasets the KR variant even wins (implicit regularization).
//!
//! CPU substitution (DESIGN.md §7): sample counts are capped, the
//! encoder is `m-128-64-8` instead of `m-1024-512-256-10`, and epoch
//! counts are reduced; the *ratios and orderings* are the reproduction
//! target, not absolute accuracy.

use kr_core::aggregator::Aggregator;
use kr_datasets::table1::{Scale, Table1};
use kr_deep::autoencoder::{Autoencoder, Compression};
use kr_deep::DeepClustering;
use kr_linalg::Matrix;
use kr_metrics::{
    adjusted_rand_index, normalized_mutual_information, unsupervised_clustering_accuracy,
};

fn cap_rows(data: &Matrix, labels: &[usize], cap: usize) -> (Matrix, Vec<usize>) {
    if data.nrows() <= cap {
        return (data.clone(), labels.to_vec());
    }
    let stride = data.nrows() as f64 / cap as f64;
    let idx: Vec<usize> = (0..cap).map(|i| (i as f64 * stride) as usize).collect();
    (
        data.select_rows(&idx),
        idx.iter().map(|&i| labels[i]).collect(),
    )
}

fn metrics(labels: &[usize], truth: &[usize]) -> (f64, f64, f64) {
    (
        adjusted_rand_index(labels, truth).unwrap(),
        unsupervised_clustering_accuracy(labels, truth).unwrap(),
        normalized_mutual_information(labels, truth).unwrap(),
    )
}

fn main() {
    let cap = kr_bench::scaled(400, 150);
    let pre_epochs = kr_bench::scaled(12, 4);
    let epochs = kr_bench::scaled(12, 4);
    println!("=== Table 3: deep clustering vs Khatri-Rao deep clustering ===");
    println!("(reduced scale: n <= {cap}, encoder m-128-64-8, {pre_epochs}+{epochs} epochs)\n");
    println!(
        "{:<16} {:>6}{:>6}{:>6} {:>6}{:>6}{:>6} {:>6}{:>6}{:>6} {:>6}{:>6}{:>6} {:>7}",
        "dataset",
        "ARI",
        "ACC",
        "NMI",
        "ARI",
        "ACC",
        "NMI",
        "ARI",
        "ACC",
        "NMI",
        "ARI",
        "ACC",
        "NMI",
        "Params"
    );
    println!(
        "{:<16} {:^18} {:^18} {:^18} {:^18}",
        "", "IDEC", "KR-IDEC", "DKM", "KR-DKM"
    );
    for ds_id in Table1::ALL {
        let loaded = ds_id.load(Scale::Reduced, 8);
        let (data, truth) = cap_rows(&loaded.data, &loaded.labels, cap);
        let m = data.ncols();
        let k = ds_id.n_clusters();
        let (h1, h2) = ds_id.factor_pair();
        // Wide hidden layers: the regime where Hadamard factoring
        // compresses (the paper uses m-1024-512-256-10).
        let dims = [m, 128, 64, 8.min(m)];

        // Full autoencoder for the baselines.
        let mut full_ae = Autoencoder::new(&dims, Compression::None, 9).unwrap();
        full_ae.pretrain(&data, pre_epochs, 128, 1e-3, 10);
        let full_rec = full_ae.reconstruction_loss(&data);
        // Compressed autoencoder for the KR variants (rank escalation).
        let (comp_ae, _) = kr_deep::autoencoder::pretrain_compressed_matching(
            &data, &dims, 2, 2, full_rec, pre_epochs, 128, 1e-3, 1, 11,
        )
        .unwrap();

        let fit_full = |trainer: DeepClustering, ae: &Autoencoder| {
            trainer
                .with_epochs(epochs)
                .with_batch_size(128)
                .with_lr(1e-3)
                .with_init_n_init(3)
                .with_seed(12)
                .fit(ae.clone(), &data)
                .unwrap()
        };
        let idec = fit_full(DeepClustering::idec(k), &full_ae);
        let kr_idec = fit_full(
            DeepClustering::kr_idec(vec![h1, h2], Aggregator::Sum),
            &comp_ae,
        );
        let dkm = fit_full(DeepClustering::dkm(k), &full_ae);
        let kr_dkm = fit_full(
            DeepClustering::kr_dkm(vec![h1, h2], Aggregator::Sum),
            &comp_ae,
        );

        let ratio = (kr_idec.n_parameters() + kr_dkm.n_parameters()) as f64
            / (idec.n_parameters() + dkm.n_parameters()) as f64;
        print!("{:<16}", ds_id.name());
        for model in [&idec, &kr_idec, &dkm, &kr_dkm] {
            let (ari, acc, nmi) = metrics(&model.labels, &truth);
            print!(" {ari:>6.2}{acc:>6.2}{nmi:>6.2}");
        }
        println!(" {ratio:>7.2}");
    }
    println!(
        "\nExpected shape (paper Table 3): KR variants reach comparable ARI/ACC/NMI \
         to their baselines while the params ratio stays well below 1 \
         (paper: 0.15-0.88, larger savings on wider networks)."
    );
}
