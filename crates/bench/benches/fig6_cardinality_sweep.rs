//! Figure 6: inertia and purity as a function of the protocentroid set
//! cardinality `h1 = h2` on Blobs and Classification (100 ground-truth
//! clusters). The paper's five algorithms — Naive-x(h1+h2),
//! k-Means(h1+h2), k-Means(h1*h2), KR-+(h1+h2), KR-x(h1+h2) — plus the
//! two external summarization baselines at the same `h1+h2` vector
//! budget: Rk-means (grid compression + weighted Lloyd) and NNK-Means
//! (non-negative kernel-regression dictionary learning).
//!
//! Paper headline: KR inertia is at most 31% (Blobs) / 81%
//! (Classification) of any same-parameter baseline; baseline purity is
//! at most 76% / 81% of KR's.

use kr_core::aggregator::Aggregator;
use kr_core::baselines::{NnkMeans, RkMeans};
use kr_core::kmeans::KMeans;
use kr_core::kr_kmeans::KrKMeans;
use kr_core::naive::NaiveKr;
use kr_metrics::purity;

fn main() {
    let n = kr_bench::scaled(1500, 1000);
    println!("=== Figure 6: inertia & purity vs cardinality h1 = h2 (n = {n}) ===");
    for maker in ["Blobs", "Classification"] {
        println!("\n--- {maker} (100 ground-truth clusters) ---");
        println!(
            "{:<6}{:>14}{:>14}{:>14}{:>14}{:>14}{:>14}{:>14}   metric",
            "h", "Naive-x", "kM(h1+h2)", "kM(h1h2)", "KR-+", "KR-x", "Rk-means", "NNK-Means"
        );
        for h in [10usize, 15, 20, 25, 30] {
            let ds = match maker {
                "Blobs" => kr_datasets::synthetic::blobs(n, 2, 100, 1.0, 60).standardized(),
                _ => kr_datasets::synthetic::classification(n, 10, 100, 60).standardized(),
            };
            let n_init = 3;
            let max_iter = 60;
            let naive = NaiveKr::new(vec![h, h])
                .with_kmeans_n_init(n_init)
                .with_decomp_max_iter(500)
                .with_seed(1)
                .fit(&ds.data)
                .unwrap();
            let km_small = KMeans::new(2 * h)
                .with_n_init(n_init)
                .with_max_iter(max_iter)
                .with_seed(1)
                .fit(&ds.data)
                .unwrap();
            let km_full = KMeans::new(h * h)
                .with_n_init(n_init)
                .with_max_iter(max_iter)
                .with_seed(1)
                .fit(&ds.data)
                .unwrap();
            let kr_sum = KrKMeans::new(vec![h, h])
                // Reproduce the paper's Algorithm 1: no warm-start candidate.
                .with_warm_start(false)
                .with_aggregator(Aggregator::Sum)
                .with_n_init(n_init)
                .with_max_iter(max_iter)
                .with_seed(1)
                .fit(&ds.data)
                .unwrap();
            let kr_prod = KrKMeans::new(vec![h, h])
                // Reproduce the paper's Algorithm 1: no warm-start candidate.
                .with_warm_start(false)
                .with_aggregator(Aggregator::Product)
                .with_n_init(n_init)
                .with_max_iter(max_iter)
                .with_seed(1)
                .fit(&ds.data)
                .unwrap();
            // External baselines at the same 2h-vector budget as the KR
            // variants and k-Means(h1+h2).
            let rk = RkMeans::new(2 * h)
                .with_n_init(n_init)
                .with_max_iter(max_iter)
                .with_seed(1)
                .fit(&ds.data)
                .unwrap();
            let nnk = NnkMeans::new(2 * h)
                .with_n_init(n_init)
                .with_max_iter(max_iter)
                .with_seed(1)
                .fit(&ds.data)
                .unwrap();
            println!(
                "{:<6}{:>14.1}{:>14.1}{:>14.1}{:>14.1}{:>14.1}{:>14.1}{:>14.1}   inertia",
                h,
                naive.inertia,
                km_small.inertia,
                km_full.inertia,
                kr_sum.inertia,
                kr_prod.inertia,
                rk.inertia,
                nnk.inertia
            );
            let p = |labels: &[usize]| purity(labels, &ds.labels).unwrap();
            println!(
                "{:<6}{:>14.3}{:>14.3}{:>14.3}{:>14.3}{:>14.3}{:>14.3}{:>14.3}   purity",
                "",
                p(&naive.labels),
                p(&km_small.labels),
                p(&km_full.labels),
                p(&kr_sum.labels),
                p(&kr_prod.labels),
                p(&rk.labels),
                p(&nnk.labels)
            );
        }
    }
    println!(
        "\nExpected shape (paper Fig. 6): KR-+/-x beat the same-parameter baselines \
         (Naive-x, kM(h1+h2)) on inertia and purity; kM(h1h2) is the optimistic bound. \
         Rk-means tracks kM(h1+h2) (same objective on a compressed set); NNK-Means \
         trades single-atom inertia for reconstruction quality (EXPERIMENTS.md, \
         'Baselines')."
    );
}
