//! The workspace's single bench-artifact JSON emitter.
//!
//! Every persisted bench artifact (`BENCH_kernels.json`,
//! `BENCH_assign.json`) is an array of [`Record`]s under one schema:
//!
//! ```json
//! {"group": "...", "bench": "...", "median_ns": 0.0, "shape": "...",
//!  "extra": {...}}
//! ```
//!
//! `group`/`bench` mirror the printed labels, `median_ns` is the median
//! per-iteration (or per-event) time, `shape` describes the problem
//! size, and `extra` is a flat object of harness-specific fields
//! (kernel mode, pruning counters, acceptance floors, …). The schema is
//! deliberately identical across harnesses so downstream tooling parses
//! one shape, and [`records_from_obs`] lets a captured `kr-obs`
//! [`kr_obs::Snapshot`] serialize through the same writer.

use std::collections::BTreeMap;

/// A JSON scalar for the `extra` object.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string field (escaped on write).
    Str(String),
    /// An integer field (written without a decimal point).
    Int(u64),
    /// A float field (written with two decimals, the artifact precision).
    Num(f64),
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Num(v)
    }
}

/// One bench measurement in the shared artifact schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Top-level grouping (criterion group, harness name, trace group).
    pub group: String,
    /// The measured leg within the group.
    pub bench: String,
    /// Median per-iteration (or per-event) time in nanoseconds.
    pub median_ns: f64,
    /// Problem size, human-readable (`""` when not applicable).
    pub shape: String,
    /// Harness-specific fields, written as a flat `extra` JSON object
    /// in insertion order.
    pub extra: Vec<(String, Value)>,
}

impl Record {
    /// Creates a record with an empty shape and no extra fields.
    pub fn new(group: impl Into<String>, bench: impl Into<String>, median_ns: f64) -> Record {
        Record {
            group: group.into(),
            bench: bench.into(),
            median_ns,
            shape: String::new(),
            extra: Vec::new(),
        }
    }

    /// Sets the problem-size string.
    pub fn with_shape(mut self, shape: impl Into<String>) -> Record {
        self.shape = shape.into();
        self
    }

    /// Appends one `extra` field (insertion order is write order).
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Record {
        self.extra.push((key.into(), value.into()));
        self
    }
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::Str(s) => push_escaped(out, s),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Num(f) if f.is_finite() => out.push_str(&format!("{f:.2}")),
        Value::Num(_) => out.push_str("null"),
    }
}

/// Serializes the records as a JSON array, one record per line.
pub fn to_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("  {\"group\": ");
        push_escaped(&mut out, &r.group);
        out.push_str(", \"bench\": ");
        push_escaped(&mut out, &r.bench);
        out.push_str(&format!(", \"median_ns\": {:.1}, \"shape\": ", r.median_ns));
        push_escaped(&mut out, &r.shape);
        out.push_str(", \"extra\": {");
        for (j, (k, v)) in r.extra.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            push_escaped(&mut out, k);
            out.push_str(": ");
            push_value(&mut out, v);
        }
        out.push_str("}}");
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Writes the records to `path` (see [`to_json`]) and logs one line.
pub fn write(path: &str, records: &[Record]) -> std::io::Result<()> {
    std::fs::write(path, to_json(records))?;
    println!("wrote {path} ({} records)", records.len());
    Ok(())
}

/// Converts a drained observability snapshot into artifact records, so
/// captured traces land in the same schema as the bench harnesses.
///
/// Spans become one record per name with the median exit duration
/// (`extra.count` = completed spans); counters aggregate to their total
/// (`extra.total`); gauges report their last reading (`extra.last`).
/// Histogram samples are summarized by count and maximum occupied
/// power-of-two bucket.
pub fn records_from_obs(snapshot: &kr_obs::Snapshot, group: &str) -> Vec<Record> {
    let mut records = Vec::new();
    let mut spans: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<&str, (f64, u64)> = BTreeMap::new();
    let mut hists: BTreeMap<&str, u64> = BTreeMap::new();
    for e in &snapshot.events {
        match e.kind {
            kr_obs::EventKind::SpanExit => {
                spans.entry(&e.name).or_default().push(e.value.as_u64());
            }
            kr_obs::EventKind::Counter => {
                *counters.entry(&e.name).or_default() += e.value.as_u64();
            }
            kr_obs::EventKind::Gauge => {
                let slot = gauges.entry(&e.name).or_insert((f64::NAN, 0));
                slot.0 = e.value.as_f64();
                slot.1 += 1;
            }
            kr_obs::EventKind::Hist => {
                *hists.entry(&e.name).or_default() += 1;
            }
            kr_obs::EventKind::SpanEnter => {}
        }
    }
    for (name, mut durations) in spans {
        durations.sort_unstable();
        let median = durations[durations.len() / 2] as f64;
        records.push(
            Record::new(group, name, median)
                .with("kind", "span")
                .with("count", durations.len()),
        );
    }
    for (name, total) in counters {
        records.push(
            Record::new(group, name, 0.0)
                .with("kind", "counter")
                .with("total", total),
        );
    }
    for (name, (last, count)) in gauges {
        records.push(
            Record::new(group, name, 0.0)
                .with("kind", "gauge")
                .with("last", last)
                .with("count", count),
        );
    }
    for (name, count) in hists {
        let max_bucket = snapshot.histogram(name).max_bucket().unwrap_or(0) as u64;
        records.push(
            Record::new(group, name, 0.0)
                .with("kind", "hist")
                .with("count", count)
                .with("max_bucket", max_bucket),
        );
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_the_unified_schema() {
        let records = vec![
            Record::new("g", "b", 1234.56)
                .with_shape("10x2")
                .with("kernel", "simd")
                .with("total", 7usize)
                .with("ratio", 2.5),
            Record::new("g", "esc\"ape", 0.0),
        ];
        let text = to_json(&records);
        assert_eq!(
            text,
            "[\n  {\"group\": \"g\", \"bench\": \"b\", \"median_ns\": 1234.6, \
             \"shape\": \"10x2\", \"extra\": {\"kernel\": \"simd\", \"total\": 7, \
             \"ratio\": 2.50}},\n  {\"group\": \"g\", \"bench\": \"esc\\\"ape\", \
             \"median_ns\": 0.0, \"shape\": \"\", \"extra\": {}}\n]\n"
        );
    }

    #[test]
    fn obs_snapshots_serialize_through_the_same_writer() {
        let text = concat!(
            r#"{"ts":1,"span":9,"kind":"span_enter","name":"s","value":0,"worker":0,"labels":{}}"#,
            "\n",
            r#"{"ts":4,"span":9,"kind":"span_exit","name":"s","value":3,"worker":0,"labels":{}}"#,
            "\n",
            r#"{"ts":5,"span":0,"kind":"counter","name":"c","value":2,"worker":0,"labels":{}}"#,
            "\n",
            r#"{"ts":6,"span":0,"kind":"counter","name":"c","value":5,"worker":1,"labels":{}}"#,
            "\n",
            r#"{"ts":7,"span":0,"kind":"gauge","name":"i","value":0.5,"worker":0,"labels":{}}"#,
            "\n",
            r#"{"ts":8,"span":0,"kind":"hist","name":"h","value":9,"worker":0,"labels":{}}"#,
            "\n",
        );
        let snapshot = kr_obs::Snapshot::parse_jsonl(text).unwrap();
        let records = records_from_obs(&snapshot, "trace");
        let find = |bench: &str| records.iter().find(|r| r.bench == bench).unwrap();
        assert_eq!(find("s").median_ns, 3.0);
        assert_eq!(
            find("c").extra,
            vec![
                ("kind".to_string(), Value::from("counter")),
                ("total".to_string(), Value::Int(7)),
            ]
        );
        assert_eq!(find("i").extra[1], ("last".to_string(), Value::Num(0.5)));
        assert_eq!(
            find("h").extra[2],
            // 9 has four significant bits -> bucket 3.
            ("max_bucket".to_string(), Value::Int(3))
        );
        // And the records pass back through the emitter.
        assert!(to_json(&records).contains("\"bench\": \"s\""));
    }
}
