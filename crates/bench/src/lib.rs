//! # kr-bench
//!
//! Shared infrastructure for the table/figure regeneration harnesses.
//! Each bench target under `benches/` is a `harness = false` binary that
//! re-runs one experiment of the paper's Section 9 and prints the same
//! rows/series the paper reports, alongside the paper's own numbers
//! where applicable (EXPERIMENTS.md records the comparison).
//!
//! The [`alloc_counter`] module provides a counting global allocator so
//! the Figure 8 harness can report *peak memory* per algorithm run, the
//! quantity the paper plots. Each bench binary registers it with
//! `kr_bench::install_counting_allocator!()`; without that, [`measure`]
//! has no way to observe the heap and reports 0 peak bytes (with a
//! one-time warning on stderr).

#![warn(missing_docs)]

pub mod alloc_counter;
pub mod bench_json;

use std::sync::Once;
use std::time::Instant;

/// Runs `f`, returning `(result, seconds, peak_bytes_during_f)`.
///
/// Peak bytes are relative to the heap level at entry and require the
/// calling binary to have run `kr_bench::install_counting_allocator!()`.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, f64, usize) {
    warn_if_not_installed();
    alloc_counter::reset_peak();
    let start = Instant::now();
    let out = f();
    let secs = start.elapsed().as_secs_f64();
    let peak = alloc_counter::peak_since_reset();
    (out, secs, peak)
}

// Non-generic so the state is truly process-wide; inside the generic
// `measure` it would be duplicated per monomorphization. Installation
// status cannot change at runtime, so the probe runs exactly once.
fn warn_if_not_installed() {
    static CHECK: Once = Once::new();
    CHECK.call_once(|| {
        if !alloc_counter::is_installed() {
            eprintln!(
                "kr_bench::measure: counting allocator not installed; peak-memory \
                 figures will read 0. Add `kr_bench::install_counting_allocator!();` \
                 to this binary."
            );
        }
    });
}

/// Scale factor for experiments: `KR_BENCH_SCALE=0.2` shrinks sample
/// counts to 20%. Defaults to 1.0 (the reduced-but-complete defaults
/// documented in DESIGN.md §7).
pub fn scale() -> f64 {
    std::env::var("KR_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&v: &f64| v > 0.0)
        .unwrap_or(1.0)
}

/// Applies the scale factor to a sample count with a floor.
pub fn scaled(n: usize, floor: usize) -> usize {
    ((n as f64 * scale()) as usize).max(floor)
}

/// Prints a rule line for the tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats bytes as mebibytes.
pub fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_time_and_peak() {
        let _guard = alloc_counter::COUNTER_TEST_LOCK.lock().unwrap();
        let (sum, secs, peak) = measure(|| {
            let v: Vec<u64> = (0..200_000).collect();
            v.iter().sum::<u64>()
        });
        assert_eq!(sum, 199_999u64 * 200_000 / 2);
        assert!(secs >= 0.0);
        assert!(peak >= 200_000 * 8, "peak {peak}");
    }

    #[test]
    fn scaled_floors() {
        assert!(scaled(1000, 10) >= 10);
    }

    #[test]
    fn lloyd_iterations_allocate_o1_after_warmup() {
        use kr_core::kr_kmeans::{KrKMeans, KrVariant};

        // The Scratch arena must recycle per-iteration temporaries:
        // after the first iteration warms the pools, extra Lloyd
        // iterations should cost O(1) allocator calls — not O(k) (the
        // old per-cluster buckets) or O(n) (fresh label/distance
        // buffers). Two fits differing only in max_iter isolate the
        // steady-state rate: tol = 0 disables early convergence and the
        // shared seed makes the common prefix identical.
        let _guard = alloc_counter::COUNTER_TEST_LOCK.lock().unwrap();
        let ds = kr_datasets::synthetic::blobs(600, 8, 16, 1.0, 74);
        let allocs_for = |iters: usize| {
            let before = alloc_counter::alloc_calls();
            let model = KrKMeans::new(vec![8, 8])
                .with_variant(KrVariant::MemoryEfficient)
                .with_warm_start(false)
                .with_n_init(1)
                .with_tol(0.0)
                .with_max_iter(iters)
                .fit(&ds.data)
                .unwrap();
            std::hint::black_box(&model);
            alloc_counter::alloc_calls() - before
        };
        let (short, long) = (4usize, 12usize);
        let (a_short, a_long) = (allocs_for(short), allocs_for(long));
        let extra = a_long.saturating_sub(a_short);
        let per_iter = extra as f64 / (long - short) as f64;
        // O(1) bound: independent of n = 600 and k = 64. A small
        // constant headroom absorbs incidental fixed-size allocations
        // (e.g. Vec growth inside pooled buffers on rare resize).
        // Tightened from 40 when the bounds-gated AssignEngine landed:
        // its point caches and bound state persist across iterations
        // (and across restarts) in the Scratch arena, so pruned
        // assignment costs the same ~16 calls/iter as the exhaustive
        // path (dominated by the update step's per-set temporaries).
        assert!(
            per_iter <= 20.0,
            "expected O(1) allocs per Lloyd iteration, got {per_iter:.1} \
             ({a_short} allocs at max_iter={short}, {a_long} at max_iter={long})"
        );
    }
}
