//! Counting global allocator for peak-memory measurement (Figure 8).
//!
//! Wraps the system allocator with atomic counters for live and peak
//! bytes. Installed for every binary that links `kr-bench`; the per-call
//! overhead is two relaxed atomic ops, negligible next to the clustering
//! kernels being measured.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// System allocator wrapper that tracks live and peak bytes.
pub struct CountingAllocator;

// SAFETY: delegates directly to `System`; bookkeeping never allocates.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                let live =
                    LIVE.fetch_add(new_size - layout.size(), Ordering::Relaxed) + new_size
                        - layout.size();
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Currently live heap bytes.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Resets the peak to the current live byte count.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak live bytes since the last [`reset_peak`], relative to the level
/// at reset time (saturating at zero).
pub fn peak_since_reset() -> usize {
    PEAK.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_allocations() {
        reset_peak();
        let before = peak_since_reset();
        let v = vec![0u8; 4 * 1024 * 1024];
        let after = peak_since_reset();
        assert!(after >= before + 4 * 1024 * 1024, "{before} -> {after}");
        drop(v);
        // Peak must not decrease on free.
        assert!(peak_since_reset() >= after);
    }
}
