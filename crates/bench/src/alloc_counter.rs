//! Counting global allocator for peak-memory measurement (Figure 8).
//!
//! Wraps the system allocator with atomic counters for live and peak
//! bytes. The wrapper only counts when it is registered as the binary's
//! `#[global_allocator]`, which a library cannot do on a binary's behalf
//! without forcing the choice on every dependent. Each bench binary must
//! therefore install it explicitly:
//!
//! ```ignore
//! kr_bench::install_counting_allocator!();
//! ```
//!
//! Binaries that skip this still run, but [`crate::measure`] reports 0
//! peak bytes (and prints a one-time warning). The per-call overhead is a
//! few relaxed atomic ops, negligible next to the clustering kernels
//! being measured.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
/// Monotonic count of `alloc` calls; unlike `LIVE` it can never be
/// driven back down by concurrent frees, so installation probing is
/// race-free.
static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);
/// Live byte level captured by the last [`reset_peak`], so peaks are
/// reported relative to the measurement start rather than process start.
static RESET_LEVEL: AtomicUsize = AtomicUsize::new(0);

/// System allocator wrapper that tracks live and peak bytes.
pub struct CountingAllocator;

// SAFETY: delegates directly to `System`; bookkeeping never allocates.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: callers uphold `GlobalAlloc::alloc`'s contract (non-zero
    // layout size); this impl adds only relaxed-atomic bookkeeping.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is forwarded unchanged from our own caller,
        // which promised it satisfies the `GlobalAlloc` requirements.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    // SAFETY: callers uphold `GlobalAlloc::dealloc`'s contract (`ptr`
    // came from this allocator with this `layout`); counters only shrink.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` are forwarded unchanged from our caller;
        // `System` allocated them because `alloc` delegates to `System`.
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    // SAFETY: callers uphold `GlobalAlloc::realloc`'s contract (`ptr`
    // from this allocator, `layout` its current layout, `new_size`
    // non-zero when rounded to `layout.align()`).
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: arguments forwarded unchanged from our own caller, and
        // `System` is the allocator that produced `ptr` (see `alloc`).
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                let live = LIVE.fetch_add(new_size - layout.size(), Ordering::Relaxed) + new_size
                    - layout.size();
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

// The lib's own unit tests measure through the counter, so the test
// binary installs it here; real bench binaries use
// `kr_bench::install_counting_allocator!()`.
#[cfg(test)]
#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Registers [`CountingAllocator`](crate::alloc_counter::CountingAllocator)
/// as the calling binary's `#[global_allocator]`. Invoke once at module
/// scope in every bench binary that reports peak memory.
#[macro_export]
macro_rules! install_counting_allocator {
    () => {
        #[global_allocator]
        static KR_BENCH_COUNTING_ALLOCATOR: $crate::alloc_counter::CountingAllocator =
            $crate::alloc_counter::CountingAllocator;
    };
}

/// Currently live heap bytes (0 unless the allocator is installed).
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Monotonic count of successful `alloc` calls since process start
/// (0 unless the allocator is installed). Deltas of this counter are how
/// the scratch-arena tests assert O(1) allocations per Lloyd iteration:
/// unlike byte counters it cannot be masked by frees.
pub fn alloc_calls() -> usize {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// True if the counting allocator is observing this binary's heap.
pub fn is_installed() -> bool {
    // The call counter is monotonic, so concurrent frees on other
    // threads cannot mask the probe allocation (unlike a `LIVE` delta).
    let calls = ALLOC_CALLS.load(Ordering::Relaxed);
    let probe = std::hint::black_box(vec![0u8; 1024]);
    let grew = ALLOC_CALLS.load(Ordering::Relaxed) > calls;
    drop(probe);
    grew
}

/// Resets the peak to the current live byte count.
pub fn reset_peak() {
    let live = LIVE.load(Ordering::Relaxed);
    RESET_LEVEL.store(live, Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
}

/// Peak live bytes since the last [`reset_peak`], relative to the level
/// at reset time (saturating at zero).
pub fn peak_since_reset() -> usize {
    PEAK.load(Ordering::Relaxed)
        .saturating_sub(RESET_LEVEL.load(Ordering::Relaxed))
}

/// Serializes tests that assert on the process-global counters; without
/// it, a concurrent test's frees can drag `LIVE` below `RESET_LEVEL`
/// and saturate another test's relative peak to zero.
#[cfg(test)]
pub(crate) static COUNTER_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_allocations() {
        let _guard = COUNTER_TEST_LOCK.lock().unwrap();
        reset_peak();
        let before = peak_since_reset();
        let v = vec![0u8; 4 * 1024 * 1024];
        let after = peak_since_reset();
        assert!(after >= before + 4 * 1024 * 1024, "{before} -> {after}");
        drop(v);
        // Peak must not decrease on free.
        assert!(peak_since_reset() >= after);
    }
}
