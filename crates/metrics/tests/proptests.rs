//! Property-based tests for clustering metrics.

use kr_metrics::external::{nmi_with, NmiNormalization};
use kr_metrics::{
    adjusted_rand_index, hungarian, normalized_mutual_information, purity,
    unsupervised_clustering_accuracy,
};
use proptest::prelude::*;

fn labels(max_k: usize, len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..max_k, len)
}

fn label_pair() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (1usize..60).prop_flat_map(|n| {
        (
            proptest::collection::vec(0usize..6, n),
            proptest::collection::vec(0usize..6, n),
        )
    })
}

/// Applies a fixed permutation to label ids.
fn permute_ids(labels: &[usize], perm: &[usize]) -> Vec<usize> {
    labels.iter().map(|&l| perm[l % perm.len()]).collect()
}

proptest! {
    #[test]
    fn self_agreement_is_perfect(l in labels(5, 1..50)) {
        prop_assert!((adjusted_rand_index(&l, &l).unwrap() - 1.0).abs() < 1e-9);
        prop_assert!((normalized_mutual_information(&l, &l).unwrap() - 1.0).abs() < 1e-9);
        prop_assert!((unsupervised_clustering_accuracy(&l, &l).unwrap() - 1.0).abs() < 1e-9);
        prop_assert!((purity(&l, &l).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_bounded((a, b) in label_pair()) {
        let ari = adjusted_rand_index(&a, &b).unwrap();
        prop_assert!(ari <= 1.0 + 1e-12);
        let nmi = normalized_mutual_information(&a, &b).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&nmi));
        let acc = unsupervised_clustering_accuracy(&a, &b).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&acc));
        let p = purity(&a, &b).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        // Purity dominates ACC (ACC restricts to one-to-one matching).
        prop_assert!(p + 1e-12 >= acc);
    }

    #[test]
    fn symmetric_in_arguments((a, b) in label_pair()) {
        let ari_ab = adjusted_rand_index(&a, &b).unwrap();
        let ari_ba = adjusted_rand_index(&b, &a).unwrap();
        prop_assert!((ari_ab - ari_ba).abs() < 1e-9);
        let nmi_ab = normalized_mutual_information(&a, &b).unwrap();
        let nmi_ba = normalized_mutual_information(&b, &a).unwrap();
        prop_assert!((nmi_ab - nmi_ba).abs() < 1e-9);
        let acc_ab = unsupervised_clustering_accuracy(&a, &b).unwrap();
        let acc_ba = unsupervised_clustering_accuracy(&b, &a).unwrap();
        prop_assert!((acc_ab - acc_ba).abs() < 1e-9);
    }

    #[test]
    fn invariant_under_label_permutation((a, b) in label_pair()) {
        let perm = [3usize, 0, 5, 1, 4, 2];
        let a2 = permute_ids(&a, &perm);
        let ari1 = adjusted_rand_index(&a, &b).unwrap();
        let ari2 = adjusted_rand_index(&a2, &b).unwrap();
        prop_assert!((ari1 - ari2).abs() < 1e-9);
        let nmi1 = normalized_mutual_information(&a, &b).unwrap();
        let nmi2 = normalized_mutual_information(&a2, &b).unwrap();
        prop_assert!((nmi1 - nmi2).abs() < 1e-9);
        let acc1 = unsupervised_clustering_accuracy(&a, &b).unwrap();
        let acc2 = unsupervised_clustering_accuracy(&a2, &b).unwrap();
        prop_assert!((acc1 - acc2).abs() < 1e-9);
    }

    #[test]
    fn nmi_max_is_smallest_normalization((a, b) in label_pair()) {
        let by_max = nmi_with(&a, &b, NmiNormalization::Max).unwrap();
        for norm in [NmiNormalization::Arithmetic, NmiNormalization::Geometric, NmiNormalization::Min] {
            let v = nmi_with(&a, &b, norm).unwrap();
            prop_assert!(by_max <= v + 1e-9);
        }
    }

    #[test]
    fn hungarian_never_beaten_by_greedy(n in 1usize..7, seed in 0u64..500) {
        // Deterministic cost matrix from seed.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 100.0
        };
        let cost: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
        let (asg, total) = hungarian::solve(&cost);
        // assignment must be a permutation
        let mut seen = vec![false; n];
        for &j in &asg { prop_assert!(!seen[j]); seen[j] = true; }
        // greedy row-by-row must not be cheaper
        let mut used = vec![false; n];
        let mut greedy = 0.0;
        for cost_row in &cost {
            let mut best = None;
            for (j, &cij) in cost_row.iter().enumerate() {
                if !used[j] && best.is_none_or(|(_, c)| cij < c) {
                    best = Some((j, cij));
                }
            }
            let (j, c) = best.unwrap();
            used[j] = true;
            greedy += c;
        }
        prop_assert!(total <= greedy + 1e-9);
    }

    #[test]
    fn acc_at_least_one_over_k((a, b) in label_pair()) {
        // With optimal matching, accuracy is at least that of matching the
        // largest true class to the largest cluster overlap — always > 0.
        let acc = unsupervised_clustering_accuracy(&a, &b).unwrap();
        prop_assert!(acc > 0.0);
    }
}
