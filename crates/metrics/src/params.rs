//! Parameter-count accounting.
//!
//! Every compression claim in the paper ("Params" columns of Tables 2 and
//! 3, Figure 2's parameter axis) is a ratio of *stored summary
//! parameters*. This module centralizes those counts so the library,
//! tests, and bench harnesses all agree on the bookkeeping.

/// Parameters stored by plain k-Means with `k` centroids in `m` dims.
pub fn kmeans_params(k: usize, m: usize) -> usize {
    k * m
}

/// Parameters stored by Khatri-Rao k-Means with protocentroid set sizes
/// `hs` in `m` dims: `(h_1 + ... + h_p) * m`.
pub fn kr_kmeans_params(hs: &[usize], m: usize) -> usize {
    hs.iter().sum::<usize>() * m
}

/// Parameters of one dense layer `W in R^{d x m}` plus bias.
pub fn dense_layer_params(d: usize, m: usize) -> usize {
    d * m + m
}

/// Parameters of one Hadamard-factored layer (Eq. 6):
/// `q` factor pairs `A_i in R^{d x r_i}`, `B_i in R^{r_i x m}`, plus bias.
pub fn hadamard_layer_params(d: usize, m: usize, ranks: &[usize]) -> usize {
    ranks.iter().map(|&r| d * r + r * m).sum::<usize>() + m
}

/// Total parameters of a fully-connected autoencoder given layer widths
/// `dims = [m, a, b, ..., latent]`: the decoder mirrors the encoder.
pub fn autoencoder_params(dims: &[usize]) -> usize {
    let enc: usize = dims
        .windows(2)
        .map(|w| dense_layer_params(w[0], w[1]))
        .sum();
    let dec: usize = dims
        .windows(2)
        .rev()
        .map(|w| dense_layer_params(w[1], w[0]))
        .sum();
    enc + dec
}

/// Ratio `compressed / baseline` as used in the "Params" columns.
pub fn ratio(compressed: usize, baseline: usize) -> f64 {
    if baseline == 0 {
        return f64::NAN;
    }
    compressed as f64 / baseline as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_counts() {
        assert_eq!(kmeans_params(40, 10), 400);
        assert_eq!(kr_kmeans_params(&[8, 5], 10), 130);
        // Table 2 "Params" column for k=40, h1=8, h2=5: 13/40 = 0.325 ≈ 0.33.
        let r = ratio(kr_kmeans_params(&[8, 5], 10), kmeans_params(40, 10));
        assert!((r - 0.325).abs() < 1e-12);
    }

    #[test]
    fn paper_params_column_examples() {
        // Table 2 reports 0.70 for MNIST (k = 10 = 5*2, h1+h2 = 7).
        let r = ratio(kr_kmeans_params(&[5, 2], 784), kmeans_params(10, 784));
        assert!((r - 0.7).abs() < 1e-12);
        // Double MNIST: k = 100 = 10*10, h1+h2 = 20 -> 0.20.
        let r = ratio(kr_kmeans_params(&[10, 10], 1568), kmeans_params(100, 1568));
        assert!((r - 0.2).abs() < 1e-12);
    }

    #[test]
    fn hadamard_layer_compresses_when_ranks_small() {
        let full = dense_layer_params(1024, 512);
        let had = hadamard_layer_params(1024, 512, &[10, 10]);
        assert!(had < full);
        // rank so large it stops compressing
        let had_big = hadamard_layer_params(1024, 512, &[512, 512]);
        assert!(had_big > full);
    }

    #[test]
    fn autoencoder_mirror() {
        // dims [4, 3, 2]: enc = (4*3+3) + (3*2+2) = 15 + 8 = 23
        // dec  = (2*3+3) + (3*4+4) = 9 + 16 = 25
        assert_eq!(autoencoder_params(&[4, 3, 2]), 48);
    }

    #[test]
    fn ratio_zero_baseline_is_nan() {
        assert!(ratio(5, 0).is_nan());
    }
}
