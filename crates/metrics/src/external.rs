//! External (ground-truth-based) clustering metrics: ARI, NMI, ACC, purity.

use crate::contingency::Contingency;
use crate::hungarian;
use crate::Result;

/// Adjusted Rand index (Hubert & Arabie, 1985).
///
/// Measures pair-counting agreement between two labelings, corrected for
/// chance. `1.0` means identical partitions, `~0.0` means chance-level
/// agreement; negative values are possible.
///
/// ```
/// let ari = kr_metrics::adjusted_rand_index(&[0, 0, 1, 1], &[1, 1, 0, 0]).unwrap();
/// assert!((ari - 1.0).abs() < 1e-12);
/// ```
pub fn adjusted_rand_index(predicted: &[usize], truth: &[usize]) -> Result<f64> {
    let c = Contingency::build(predicted, truth)?;
    let comb2 = |x: usize| -> f64 {
        let x = x as f64;
        x * (x - 1.0) / 2.0
    };
    let sum_ij: f64 = c
        .counts
        .iter()
        .flat_map(|row| row.iter())
        .map(|&v| comb2(v))
        .sum();
    let sum_a: f64 = c.row_sums.iter().map(|&v| comb2(v)).sum();
    let sum_b: f64 = c.col_sums.iter().map(|&v| comb2(v)).sum();
    let total_pairs = comb2(c.n);
    if total_pairs == 0.0 {
        return Ok(1.0); // single sample: partitions trivially agree
    }
    let expected = sum_a * sum_b / total_pairs;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-15 {
        // Both partitions are all-singletons or all-one-cluster: define
        // ARI = 1 when identical structure, matching scikit-learn.
        return Ok(1.0);
    }
    Ok((sum_ij - expected) / (max_index - expected))
}

/// How the normalized mutual information is normalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NmiNormalization {
    /// `I / ((H(U) + H(V)) / 2)` — scikit-learn's default.
    #[default]
    Arithmetic,
    /// `I / sqrt(H(U) * H(V))`.
    Geometric,
    /// `I / min(H(U), H(V))`.
    Min,
    /// `I / max(H(U), H(V))`.
    Max,
}

/// Normalized mutual information with the arithmetic-mean normalization
/// (scikit-learn default, as used in the paper's tables).
pub fn normalized_mutual_information(predicted: &[usize], truth: &[usize]) -> Result<f64> {
    nmi_with(predicted, truth, NmiNormalization::Arithmetic)
}

/// Normalized mutual information with a selectable normalization.
pub fn nmi_with(predicted: &[usize], truth: &[usize], norm: NmiNormalization) -> Result<f64> {
    let c = Contingency::build(predicted, truth)?;
    let n = c.n as f64;
    let mut mi = 0.0;
    for (i, row) in c.counts.iter().enumerate() {
        for (j, &nij) in row.iter().enumerate() {
            if nij == 0 {
                continue;
            }
            let nij = nij as f64;
            let pij = nij / n;
            let pi = c.row_sums[i] as f64 / n;
            let pj = c.col_sums[j] as f64 / n;
            mi += pij * (pij / (pi * pj)).ln();
        }
    }
    let entropy = |sums: &[usize]| -> f64 {
        sums.iter()
            .filter(|&&s| s > 0)
            .map(|&s| {
                let p = s as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let hu = entropy(&c.row_sums);
    let hv = entropy(&c.col_sums);
    let denom = match norm {
        NmiNormalization::Arithmetic => 0.5 * (hu + hv),
        NmiNormalization::Geometric => (hu * hv).sqrt(),
        NmiNormalization::Min => hu.min(hv),
        NmiNormalization::Max => hu.max(hv),
    };
    if denom <= 0.0 {
        // Both labelings constant: identical trivial partitions.
        return Ok(1.0);
    }
    Ok((mi / denom).clamp(0.0, 1.0))
}

/// Unsupervised clustering accuracy (ACC).
///
/// The fraction of correctly labeled samples under the *best* one-to-one
/// mapping between predicted clusters and true classes, found with the
/// Hungarian algorithm on the contingency table.
pub fn unsupervised_clustering_accuracy(predicted: &[usize], truth: &[usize]) -> Result<f64> {
    let c = Contingency::build(predicted, truth)?;
    let (_, matched) = hungarian::solve_max_rectangular(&c.counts);
    Ok(matched as f64 / c.n as f64)
}

/// Clustering purity: each predicted cluster votes for its majority true
/// class (multiple clusters may vote for the same class).
pub fn purity(predicted: &[usize], truth: &[usize]) -> Result<f64> {
    let c = Contingency::build(predicted, truth)?;
    let correct: usize = c
        .counts
        .iter()
        .map(|row| row.iter().copied().max().unwrap_or(0))
        .sum();
    Ok(correct as f64 / c.n as f64)
}

/// The three ground-truth scores every table in the paper reports
/// side by side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExternalScores {
    /// [`adjusted_rand_index`].
    pub ari: f64,
    /// [`unsupervised_clustering_accuracy`].
    pub acc: f64,
    /// [`normalized_mutual_information`].
    pub nmi: f64,
}

/// Computes ARI, ACC, and NMI in one call — the bundle the Table 2 /
/// Table 3 harnesses print per algorithm, including the Rk-means and
/// NNK-Means baseline fits.
///
/// ```
/// let s = kr_metrics::evaluate_external(&[0, 0, 1, 1], &[1, 1, 0, 0]).unwrap();
/// assert!((s.ari - 1.0).abs() < 1e-12);
/// assert!((s.acc - 1.0).abs() < 1e-12);
/// assert!((s.nmi - 1.0).abs() < 1e-12);
/// ```
pub fn evaluate_external(predicted: &[usize], truth: &[usize]) -> Result<ExternalScores> {
    Ok(ExternalScores {
        ari: adjusted_rand_index(predicted, truth)?,
        acc: unsupervised_clustering_accuracy(predicted, truth)?,
        nmi: normalized_mutual_information(predicted, truth)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_external_bundles_the_three_scores() {
        let pred = [0, 0, 1, 1, 1, 2];
        let truth = [0, 0, 0, 1, 1, 1];
        let s = evaluate_external(&pred, &truth).unwrap();
        assert_eq!(s.ari, adjusted_rand_index(&pred, &truth).unwrap());
        assert_eq!(
            s.acc,
            unsupervised_clustering_accuracy(&pred, &truth).unwrap()
        );
        assert_eq!(s.nmi, normalized_mutual_information(&pred, &truth).unwrap());
    }

    #[test]
    fn evaluate_external_propagates_errors() {
        assert!(evaluate_external(&[0, 1], &[0]).is_err());
    }

    #[test]
    fn perfect_agreement() {
        let a = [0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        assert!((unsupervised_clustering_accuracy(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        assert!((purity(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permuted_labels_are_perfect() {
        let a = [0, 0, 1, 1, 2, 2];
        let b = [2, 2, 0, 0, 1, 1];
        assert!((adjusted_rand_index(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!((unsupervised_clustering_accuracy(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_known_value() {
        // scikit-learn docs example: ARI([0,0,1,1],[0,0,1,2]) = 0.5714...
        let ari = adjusted_rand_index(&[0, 0, 1, 1], &[0, 0, 1, 2]).unwrap();
        assert!((ari - 0.5714285714285714).abs() < 1e-9, "{ari}");
    }

    #[test]
    fn ari_chance_level_near_zero() {
        // Independent alternating pattern vs block pattern.
        let pred = [0, 1, 0, 1, 0, 1, 0, 1];
        let truth = [0, 0, 0, 0, 1, 1, 1, 1];
        let ari = adjusted_rand_index(&pred, &truth).unwrap();
        assert!(ari.abs() < 0.3, "{ari}");
    }

    #[test]
    fn nmi_independent_is_zero() {
        let pred = [0, 1, 0, 1];
        let truth = [0, 0, 1, 1];
        let nmi = normalized_mutual_information(&pred, &truth).unwrap();
        assert!(nmi.abs() < 1e-12, "{nmi}");
    }

    #[test]
    fn nmi_normalizations_ordered() {
        let pred = [0, 0, 1, 1, 1, 2];
        let truth = [0, 0, 0, 1, 1, 1];
        let by_min = nmi_with(&pred, &truth, NmiNormalization::Min).unwrap();
        let by_geo = nmi_with(&pred, &truth, NmiNormalization::Geometric).unwrap();
        let by_ari = nmi_with(&pred, &truth, NmiNormalization::Arithmetic).unwrap();
        let by_max = nmi_with(&pred, &truth, NmiNormalization::Max).unwrap();
        assert!(by_min >= by_geo - 1e-12);
        assert!(by_geo >= by_ari - 1e-12 || by_ari >= 0.0); // geo <= arith only if hu=hv
        assert!(by_ari >= by_max - 1e-12);
    }

    #[test]
    fn acc_example() {
        // 2 predicted clusters vs 2 classes with one mistake.
        let pred = [0, 0, 0, 1, 1, 1];
        let truth = [1, 1, 0, 0, 0, 0];
        // Best mapping: pred 0 -> class 1 (2 right), pred 1 -> class 0 (3 right).
        let acc = unsupervised_clustering_accuracy(&pred, &truth).unwrap();
        assert!((acc - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn acc_more_clusters_than_classes() {
        let pred = [0, 1, 2, 3];
        let truth = [0, 0, 1, 1];
        let acc = unsupervised_clustering_accuracy(&pred, &truth).unwrap();
        // Each class can be claimed by exactly one cluster: 2/4.
        assert!((acc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn purity_can_exceed_acc() {
        // Purity lets several clusters vote the same class; ACC cannot.
        let pred = [0, 1, 2, 3];
        let truth = [0, 0, 0, 0];
        assert!((purity(&pred, &truth).unwrap() - 1.0).abs() < 1e-12);
        let acc = unsupervised_clustering_accuracy(&pred, &truth).unwrap();
        assert!(acc < 1.0);
    }

    #[test]
    fn single_sample() {
        assert!((adjusted_rand_index(&[3], &[9]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_labelings() {
        let a = [0, 0, 0];
        assert!((normalized_mutual_information(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }
}
