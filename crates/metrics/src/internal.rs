//! Internal (label-free) clustering quality: inertia and friends.

use kr_linalg::{ops, Matrix};

/// Inertia: total squared Euclidean distance from each point to its
/// nearest centroid — the k-Means objective (Eq. 1 of the paper).
///
/// `data` is `n x m`, `centroids` is `k x m`.
pub fn inertia(data: &Matrix, centroids: &Matrix) -> f64 {
    assert_eq!(data.ncols(), centroids.ncols(), "dimension mismatch");
    let mut total = 0.0;
    for x in data.rows_iter() {
        let mut best = f64::INFINITY;
        for c in centroids.rows_iter() {
            let d = ops::sqdist(x, c);
            if d < best {
                best = d;
            }
        }
        total += best;
    }
    total
}

/// Inertia under a *given* assignment (not necessarily the nearest one).
///
/// Useful for evaluating the objective of constrained algorithms at their
/// own assignments.
pub fn inertia_with_assignments(data: &Matrix, centroids: &Matrix, assignments: &[usize]) -> f64 {
    assert_eq!(
        data.nrows(),
        assignments.len(),
        "assignment length mismatch"
    );
    assert_eq!(data.ncols(), centroids.ncols(), "dimension mismatch");
    data.rows_iter()
        .zip(assignments.iter())
        .map(|(x, &a)| ops::sqdist(x, centroids.row(a)))
        .sum()
}

/// Assigns every row of `data` to its nearest row of `centroids`.
pub fn nearest_assignments(data: &Matrix, centroids: &Matrix) -> Vec<usize> {
    assert_eq!(data.ncols(), centroids.ncols(), "dimension mismatch");
    data.rows_iter()
        .map(|x| {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (i, c) in centroids.rows_iter().enumerate() {
                let d = ops::sqdist(x, c);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            best
        })
        .collect()
}

/// Bayesian Information Criterion for a spherical-Gaussian k-Means model
/// (as used by X-Means, Pelleg & Moore 2000). Higher is better.
///
/// Used by the design-choice helpers when estimating the number of
/// clusters (paper §8, "Choosing the number of centroids").
pub fn bic_spherical(data: &Matrix, centroids: &Matrix, assignments: &[usize]) -> f64 {
    let n = data.nrows() as f64;
    let m = data.ncols() as f64;
    let k = centroids.nrows() as f64;
    if n <= k {
        return f64::NEG_INFINITY;
    }
    let rss = inertia_with_assignments(data, centroids, assignments);
    // MLE of the shared spherical variance.
    let variance = (rss / (m * (n - k))).max(1e-300);
    let mut counts = vec![0usize; centroids.nrows()];
    for &a in assignments {
        counts[a] += 1;
    }
    let mut ll = 0.0;
    for &c in &counts {
        if c == 0 {
            continue;
        }
        let cn = c as f64;
        ll += cn * cn.ln()
            - cn * n.ln()
            - cn * m / 2.0 * (2.0 * std::f64::consts::PI * variance).ln()
            - (cn - 1.0) * m / 2.0;
    }
    let free_params = k * (m + 1.0);
    ll - free_params / 2.0 * n.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Matrix, Matrix) {
        let data = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![10.0, 10.0],
            vec![10.0, 11.0],
        ])
        .unwrap();
        let centroids = Matrix::from_rows(&[vec![0.0, 0.5], vec![10.0, 10.5]]).unwrap();
        (data, centroids)
    }

    #[test]
    fn inertia_exact() {
        let (data, centroids) = toy();
        // Each point is 0.5 away from its centroid: 4 * 0.25 = 1.0.
        assert!((inertia(&data, &centroids) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inertia_with_fixed_assignment() {
        let (data, centroids) = toy();
        let good = inertia_with_assignments(&data, &centroids, &[0, 0, 1, 1]);
        assert!((good - 1.0).abs() < 1e-12);
        let bad = inertia_with_assignments(&data, &centroids, &[1, 1, 0, 0]);
        assert!(bad > good);
        // Nearest assignment is optimal among all assignments.
        assert!(inertia(&data, &centroids) <= bad);
    }

    #[test]
    fn nearest_assignment_correct() {
        let (data, centroids) = toy();
        assert_eq!(nearest_assignments(&data, &centroids), vec![0, 0, 1, 1]);
    }

    #[test]
    fn zero_inertia_when_centroids_are_points() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(inertia(&data, &data), 0.0);
    }

    #[test]
    fn bic_prefers_true_structure() {
        // Two well-separated blobs: k=2 should beat k=1.
        let mut rows = Vec::new();
        for i in 0..20 {
            let jitter = (i as f64 % 5.0) * 0.01;
            rows.push(vec![0.0 + jitter, jitter]);
            rows.push(vec![50.0 + jitter, 50.0 - jitter]);
        }
        let data = Matrix::from_rows(&rows).unwrap();
        let c1 = Matrix::from_rows(&[vec![25.0, 25.0]]).unwrap();
        let a1 = nearest_assignments(&data, &c1);
        let c2 = Matrix::from_rows(&[vec![0.0, 0.0], vec![50.0, 50.0]]).unwrap();
        let a2 = nearest_assignments(&data, &c2);
        assert!(bic_spherical(&data, &c2, &a2) > bic_spherical(&data, &c1, &a1));
    }
}
