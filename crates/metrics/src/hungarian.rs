//! Hungarian (Kuhn-Munkres) assignment solver.
//!
//! Implemented from scratch as the shortest-augmenting-path variant
//! (Jonker-Volgenant style) in `O(n^3)`. Used by unsupervised clustering
//! accuracy (ACC), which requires the *optimal* one-to-one matching
//! between predicted clusters and true classes.

/// Solves the square minimum-cost assignment problem.
///
/// `cost` is an `n x n` row-major matrix; returns `(assignment, total)`
/// where `assignment[row] = col` and `total` is the minimized cost.
///
/// ```
/// let cost = vec![
///     vec![4.0, 1.0, 3.0],
///     vec![2.0, 0.0, 5.0],
///     vec![3.0, 2.0, 2.0],
/// ];
/// let (asg, total) = kr_metrics::hungarian::solve(&cost);
/// assert_eq!(total, 5.0); // 1 + 2 + 2
/// assert_eq!(asg, vec![1, 0, 2]);
/// ```
pub fn solve(cost: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = cost.len();
    if n == 0 {
        return (vec![], 0.0);
    }
    debug_assert!(
        cost.iter().all(|r| r.len() == n),
        "cost matrix must be square"
    );

    // Potentials and matching arrays are 1-indexed internally with a
    // virtual 0 row/column, per the classic JV formulation.
    let inf = f64::INFINITY;
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col (0 = none)
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total: f64 = assignment
        .iter()
        .enumerate()
        .map(|(r, &c)| cost[r][c])
        .sum();
    (assignment, total)
}

/// Solves the (possibly rectangular) maximum-weight assignment problem.
///
/// `weight` is `r x c`; the matrix is padded to square with zeros and
/// converted to costs. Returns `assignment[row] = Some(col)` for real
/// matches (rows matched to padding columns yield `None`) and the total
/// matched weight.
pub fn solve_max_rectangular(weight: &[Vec<usize>]) -> (Vec<Option<usize>>, usize) {
    let r = weight.len();
    if r == 0 {
        return (vec![], 0);
    }
    let c = weight[0].len();
    let n = r.max(c);
    let max_w = weight
        .iter()
        .flat_map(|row| row.iter())
        .copied()
        .max()
        .unwrap_or(0) as f64;
    // cost = max_w - weight; padding entries cost max_w (weight 0).
    let cost: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    if i < r && j < c {
                        max_w - weight[i][j] as f64
                    } else {
                        max_w
                    }
                })
                .collect()
        })
        .collect();
    let (asg, _) = solve(&cost);
    let mut out = vec![None; r];
    let mut total = 0usize;
    for i in 0..r {
        let j = asg[i];
        if j < c {
            out[i] = Some(j);
            total += weight[i][j];
        }
    }
    (out, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_min(cost: &[Vec<f64>]) -> f64 {
        let n = cost.len();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut best = f64::INFINITY;
        permute(&mut perm, 0, &mut |p| {
            let total: f64 = p.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
            if total < best {
                best = total;
            }
        });
        best
    }

    fn permute(arr: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == arr.len() {
            f(arr);
            return;
        }
        for i in k..arr.len() {
            arr.swap(k, i);
            permute(arr, k + 1, f);
            arr.swap(k, i);
        }
    }

    #[test]
    fn trivial_sizes() {
        assert_eq!(solve(&[]).1, 0.0);
        let (asg, t) = solve(&[vec![7.0]]);
        assert_eq!(asg, vec![0]);
        assert_eq!(t, 7.0);
    }

    #[test]
    fn classic_example() {
        let cost = vec![
            vec![9.0, 2.0, 7.0, 8.0],
            vec![6.0, 4.0, 3.0, 7.0],
            vec![5.0, 8.0, 1.0, 8.0],
            vec![7.0, 6.0, 9.0, 4.0],
        ];
        let (_, total) = solve(&cost);
        assert_eq!(total, 13.0); // 2 + 6 + 1 + 4
    }

    #[test]
    fn matches_brute_force_on_random() {
        // Deterministic pseudo-random matrices; brute force up to 6x6.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) * 10.0
        };
        for n in 1..=6 {
            for _ in 0..10 {
                let cost: Vec<Vec<f64>> =
                    (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
                let (_, total) = solve(&cost);
                let best = brute_force_min(&cost);
                assert!(
                    (total - best).abs() < 1e-9,
                    "n={n}: hungarian {total} vs brute {best}"
                );
            }
        }
    }

    #[test]
    fn assignment_is_permutation() {
        let cost = vec![
            vec![1.0, 2.0, 3.0],
            vec![1.0, 2.0, 3.0],
            vec![1.0, 2.0, 3.0],
        ];
        let (asg, total) = solve(&cost);
        let mut seen = [false; 3];
        for &j in &asg {
            assert!(!seen[j]);
            seen[j] = true;
        }
        assert_eq!(total, 6.0);
    }

    #[test]
    fn rectangular_max_tall() {
        // 3 rows, 2 cols: one row must stay unmatched.
        let w = vec![vec![10, 1], vec![1, 10], vec![5, 5]];
        let (asg, total) = solve_max_rectangular(&w);
        assert_eq!(total, 20);
        assert_eq!(asg[0], Some(0));
        assert_eq!(asg[1], Some(1));
        assert_eq!(asg[2], None);
    }

    #[test]
    fn rectangular_max_wide() {
        let w = vec![vec![1, 9, 2]];
        let (asg, total) = solve_max_rectangular(&w);
        assert_eq!(total, 9);
        assert_eq!(asg, vec![Some(1)]);
    }

    #[test]
    fn negative_costs_ok() {
        let cost = vec![vec![-5.0, 0.0], vec![0.0, -5.0]];
        let (asg, total) = solve(&cost);
        assert_eq!(total, -10.0);
        assert_eq!(asg, vec![0, 1]);
    }
}
