//! # kr-metrics
//!
//! Clustering-evaluation metrics used throughout the paper's experiments:
//!
//! * [`external::adjusted_rand_index`] (ARI, Hubert & Arabie 1985),
//! * [`external::normalized_mutual_information`] (NMI),
//! * [`external::unsupervised_clustering_accuracy`] (ACC, Yang et al. 2010 —
//!   optimal label matching via a from-scratch Hungarian solver),
//! * [`external::purity`],
//! * [`internal::inertia`] (the k-Means objective),
//! * [`params`] — parameter-count accounting used for every
//!   "compression ratio" column in Tables 2 and 3.
//!
//! All external metrics take predicted and ground-truth labels as
//! `&[usize]` and are permutation-invariant in the cluster ids.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod contingency;
pub mod external;
pub mod hungarian;
pub mod internal;
pub mod params;

pub use external::{
    adjusted_rand_index, evaluate_external, normalized_mutual_information, purity,
    unsupervised_clustering_accuracy, ExternalScores,
};
pub use internal::{inertia, inertia_with_assignments};

/// Errors from metric computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// Label slices have different lengths.
    LengthMismatch {
        /// Length of the predicted-label slice.
        predicted: usize,
        /// Length of the true-label slice.
        truth: usize,
    },
    /// Label slices are empty.
    Empty,
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsError::LengthMismatch { predicted, truth } => {
                write!(
                    f,
                    "label length mismatch: predicted={predicted}, truth={truth}"
                )
            }
            MetricsError::Empty => write!(f, "label slices are empty"),
        }
    }
}

impl std::error::Error for MetricsError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, MetricsError>;
