//! Contingency tables between two labelings.

use crate::{MetricsError, Result};

/// A contingency table between predicted and ground-truth labelings.
///
/// `counts[i][j]` is the number of samples with predicted cluster id
/// `pred_ids[i]` and true class id `true_ids[j]`. Cluster/class ids may be
/// arbitrary `usize` values; they are compacted into dense indices.
#[derive(Debug, Clone)]
pub struct Contingency {
    /// Dense count matrix, `n_pred x n_true`.
    pub counts: Vec<Vec<usize>>,
    /// Row (predicted-cluster) marginal sums.
    pub row_sums: Vec<usize>,
    /// Column (true-class) marginal sums.
    pub col_sums: Vec<usize>,
    /// Total number of samples.
    pub n: usize,
}

impl Contingency {
    /// Builds the contingency table for two equal-length labelings.
    pub fn build(predicted: &[usize], truth: &[usize]) -> Result<Self> {
        if predicted.len() != truth.len() {
            return Err(MetricsError::LengthMismatch {
                predicted: predicted.len(),
                truth: truth.len(),
            });
        }
        if predicted.is_empty() {
            return Err(MetricsError::Empty);
        }
        let pred_index = compact_ids(predicted);
        let true_index = compact_ids(truth);
        let (np, nt) = (pred_index.len(), true_index.len());
        let mut counts = vec![vec![0usize; nt]; np];
        for (&p, &t) in predicted.iter().zip(truth.iter()) {
            counts[pred_index[&p]][true_index[&t]] += 1;
        }
        let row_sums: Vec<usize> = counts.iter().map(|r| r.iter().sum()).collect();
        let mut col_sums = vec![0usize; nt];
        for row in &counts {
            for (c, &v) in col_sums.iter_mut().zip(row.iter()) {
                *c += v;
            }
        }
        Ok(Contingency {
            counts,
            row_sums,
            col_sums,
            n: predicted.len(),
        })
    }

    /// Number of distinct predicted clusters.
    pub fn n_pred(&self) -> usize {
        self.counts.len()
    }

    /// Number of distinct true classes.
    pub fn n_true(&self) -> usize {
        self.col_sums.len()
    }
}

/// Maps arbitrary ids to dense `0..k` indices in first-appearance order.
fn compact_ids(labels: &[usize]) -> std::collections::HashMap<usize, usize> {
    let mut map = std::collections::HashMap::new();
    for &l in labels {
        let next = map.len();
        map.entry(l).or_insert(next);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_table() {
        let pred = [0, 0, 1, 1, 1];
        let truth = [5, 5, 5, 9, 9];
        let c = Contingency::build(&pred, &truth).unwrap();
        assert_eq!(c.n, 5);
        assert_eq!(c.n_pred(), 2);
        assert_eq!(c.n_true(), 2);
        assert_eq!(c.counts[0], vec![2, 0]);
        assert_eq!(c.counts[1], vec![1, 2]);
        assert_eq!(c.row_sums, vec![2, 3]);
        assert_eq!(c.col_sums, vec![3, 2]);
    }

    #[test]
    fn rejects_mismatched_lengths() {
        assert!(matches!(
            Contingency::build(&[0], &[0, 1]),
            Err(MetricsError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            Contingency::build(&[], &[]),
            Err(MetricsError::Empty)
        ));
    }

    #[test]
    fn noncontiguous_ids_are_compacted() {
        let pred = [100, 7, 100];
        let truth = [3, 3, 42];
        let c = Contingency::build(&pred, &truth).unwrap();
        assert_eq!(c.n_pred(), 2);
        assert_eq!(c.n_true(), 2);
        let total: usize = c.row_sums.iter().sum();
        assert_eq!(total, 3);
    }
}
