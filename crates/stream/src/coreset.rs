//! Merge-reduce coreset tree: bounded-memory weighted-representative
//! summaries of an unbounded stream.
//!
//! The classic streaming construction (Bentley & Saxe merge-reduce, as
//! used by Har-Peled & Mazumdar and the streaming-k-means literature):
//! incoming points fill a **leaf buffer**; a full buffer is compressed
//! into one weighted node of at most `budget` representatives; nodes
//! live on a binary **level ladder** where two nodes meeting at level
//! `l` merge (ordered: older first) and re-compress into one node at
//! level `l + 1`. Compression is the workspace's own weighted machinery:
//! a [`WeightedKMeans`] fit whose centroids become the representatives,
//! each weighted by the point mass it absorbed — exactly the
//! weighted-representative invariant Rk-means (Curtin et al.) shows
//! preserves clustering quality.
//!
//! **Bounded node count.** After any `observe` call the tree holds at
//! most one node per level and at most `leaf_size − 1` buffered raw
//! points, and a stream of `n` points creates at most
//! `⌊log₂(max(⌈n / leaf_size⌉, 1))⌋ + 1` levels. During a merge the
//! carried node transiently coexists with the occupied level it is
//! merging into, so the live representative count never exceeds
//!
//! ```text
//! leaf_size + budget · (levels + 1)
//! ```
//!
//! — the closed form [`CoresetTree::representative_bound`] returns and
//! the tests (plus the `fig_stream_scalability` harness) verify against
//! the measured [`CoresetTree::peak_representatives`].
//!
//! Total weight is conserved: every batch adds exactly its row count to
//! the summary's total mass, so the summary stays a faithful coreset of
//! the stream.
//!
//! ```
//! use kr_stream::{CoresetTree, StreamSummarizer};
//! use kr_linalg::Matrix;
//!
//! let batch = Matrix::from_fn(64, 2, |i, j| ((i * 13 + j * 7) % 32) as f64);
//! let mut tree = CoresetTree::new(4, 8).with_leaf_size(16).with_seed(1);
//! tree.observe(&batch).unwrap();
//! let summary = tree.summary().unwrap();
//! assert_eq!(summary.total_weight(), 64.0); // mass conserved
//! assert!(tree.peak_representatives() <= tree.representative_bound());
//! ```

use crate::StreamSummarizer;
use kr_core::baselines::WeightedKMeans;
use kr_core::{CoreError, Result};
use kr_datasets::weighted::WeightedDataset;
use kr_linalg::{ExecCtx, Matrix};

/// Decorrelates per-compression RNG streams (an arbitrary odd 64-bit
/// constant, the same mixer the warm-start salt uses).
const COMPRESS_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// One weighted node of the ladder: representatives plus their masses.
#[derive(Debug, Clone)]
struct WeightedNode {
    points: Matrix,
    weights: Vec<f64>,
}

/// Streaming merge-reduce coreset tree (builder style).
#[derive(Debug, Clone)]
pub struct CoresetTree {
    k: usize,
    budget: usize,
    leaf_size: usize,
    n_init: usize,
    max_iter: usize,
    seed: u64,
    exec: ExecCtx,
    // ---- streaming state ----
    m: Option<usize>,
    buffer: Vec<f64>,
    buffer_rows: usize,
    levels: Vec<Option<WeightedNode>>,
    level_reps: usize,
    n_observed: usize,
    peak_representatives: usize,
    compressions: u64,
}

/// The model a finished [`CoresetTree`] stream produces: `k` centroids
/// fitted over the final coreset.
#[derive(Debug, Clone)]
pub struct CoresetModel {
    /// Final centroids, `k x m`.
    pub centroids: Matrix,
    /// Weighted inertia of the final fit over the coreset (the objective
    /// the compressed fit optimizes; evaluate against raw data with
    /// `kr_metrics::inertia` when the data is still at hand).
    pub compressed_inertia: f64,
    /// Total points observed by the stream.
    pub n_observed: usize,
    /// Representatives in the summary the final fit consumed.
    pub n_representatives: usize,
    /// Highest live representative count the tree ever held.
    pub peak_representatives: usize,
}

impl CoresetTree {
    /// Creates a tree that summarizes toward `k` final clusters with at
    /// most `budget` representatives per compressed node. Defaults:
    /// leaf buffer of `4 · budget` raw points, 4 restarts, 50 Lloyd
    /// iterations per compression, seed 0, serial execution.
    pub fn new(k: usize, budget: usize) -> Self {
        let budget = budget.max(1);
        CoresetTree {
            k: k.max(1),
            budget,
            leaf_size: 4 * budget,
            n_init: 4,
            max_iter: 50,
            seed: 0,
            exec: ExecCtx::serial(),
            m: None,
            buffer: Vec::new(),
            buffer_rows: 0,
            levels: Vec::new(),
            level_reps: 0,
            n_observed: 0,
            peak_representatives: 0,
            compressions: 0,
        }
    }

    /// Sets the leaf-buffer capacity (raw points held before the first
    /// compression; clamped to at least `budget + 1` so compressing a
    /// leaf actually reduces it).
    pub fn with_leaf_size(mut self, leaf_size: usize) -> Self {
        self.leaf_size = leaf_size.max(self.budget + 1);
        self
    }

    /// Sets the restart count of every compression / final fit.
    pub fn with_n_init(mut self, n_init: usize) -> Self {
        self.n_init = n_init.max(1);
        self
    }

    /// Sets the Lloyd iteration cap of every compression / final fit.
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter.max(1);
        self
    }

    /// Sets the RNG seed (streams are deterministic given the seed and
    /// the batch sequence).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the thread budget (shorthand for an [`ExecCtx`] on the
    /// global pool; results are identical at any thread count).
    pub fn with_threads(self, threads: usize) -> Self {
        let exec = self.exec.clone().with_threads(threads);
        self.with_exec(exec)
    }

    /// Sets the execution context used by the compression fits.
    pub fn with_exec(mut self, exec: ExecCtx) -> Self {
        self.exec = exec;
        self
    }

    /// Total points observed so far.
    pub fn n_observed(&self) -> usize {
        self.n_observed
    }

    /// Highest live representative count (buffered raw points + node
    /// representatives, merge transients included) the tree ever held.
    pub fn peak_representatives(&self) -> usize {
        self.peak_representatives
    }

    /// The closed-form bound [`CoresetTree::peak_representatives`] never
    /// exceeds: `leaf_size + budget · (levels + 1)` for the ladder the
    /// stream has actually grown (see the module docs for the proof
    /// sketch).
    pub fn representative_bound(&self) -> usize {
        self.leaf_size + self.budget * (self.levels.len() + 1)
    }

    /// Live representatives right now (buffer + all level nodes).
    fn live_representatives(&self) -> usize {
        self.buffer_rows + self.level_reps
    }

    fn track_peak(&mut self, extra: usize) {
        let live = self.live_representatives() + extra;
        if live > self.peak_representatives {
            self.peak_representatives = live;
        }
    }

    /// Compresses a weighted set to at most `budget` representatives
    /// with a weighted Lloyd fit; representatives are the fitted
    /// centroids weighted by the mass they absorbed (zero-mass centroids
    /// — final-iteration reseeds that captured nothing — are dropped in
    /// index order).
    fn compress(&mut self, points: &Matrix, weights: &[f64]) -> WeightedNode {
        debug_assert!(points.nrows() > self.budget);
        self.compressions += 1;
        kr_obs::counter!("stream.compressions", 1, "rows" => points.nrows());
        let salt = self
            .seed
            .wrapping_add(self.compressions.wrapping_mul(COMPRESS_SALT));
        let model = WeightedKMeans::new(self.budget)
            .with_n_init(self.n_init)
            .with_max_iter(self.max_iter)
            .with_seed(salt)
            .with_exec(self.exec.clone())
            .fit(points, weights)
            .expect("compression input validated by the stream");
        let mut masses = vec![0.0f64; self.budget];
        for (&l, &w) in model.labels.iter().zip(weights) {
            masses[l] += w;
        }
        let keep: Vec<usize> = (0..self.budget).filter(|&c| masses[c] > 0.0).collect();
        WeightedNode {
            points: model.centroids.select_rows(&keep),
            weights: keep.iter().map(|&c| masses[c]).collect(),
        }
    }

    /// Inserts a node at level 0, carrying merges up the ladder: two
    /// nodes at one level merge (older node's rows first — the fixed
    /// order the determinism contract requires) and re-compress one
    /// level up.
    fn insert(&mut self, mut node: WeightedNode) {
        let mut level = 0;
        loop {
            if level == self.levels.len() {
                self.levels.push(None);
            }
            match self.levels[level].take() {
                None => {
                    self.level_reps += node.points.nrows();
                    self.levels[level] = Some(node);
                    self.track_peak(0);
                    kr_obs::hist!("stream.ladder_depth", self.levels.len());
                    return;
                }
                Some(older) => {
                    self.level_reps -= older.points.nrows();
                    // Both operands are live while merging.
                    self.track_peak(older.points.nrows() + node.points.nrows());
                    let points = older
                        .points
                        .vstack(&node.points)
                        .expect("stream-wide dimension already validated");
                    let mut weights = older.weights;
                    weights.extend_from_slice(&node.weights);
                    node = if points.nrows() > self.budget {
                        self.compress(&points, &weights)
                    } else {
                        WeightedNode { points, weights }
                    };
                    level += 1;
                }
            }
        }
    }

    /// Drains the full leaf buffer into a compressed level-0 node.
    fn flush_leaf(&mut self) {
        let m = self.m.expect("buffer only fills after m is known");
        let points = Matrix::from_vec(self.buffer_rows, m, std::mem::take(&mut self.buffer))
            .expect("buffer is row-aligned");
        self.buffer_rows = 0;
        let weights = vec![1.0f64; points.nrows()];
        let node = if points.nrows() > self.budget {
            self.compress(&points, &weights)
        } else {
            WeightedNode { points, weights }
        };
        self.insert(node);
    }
}

impl StreamSummarizer for CoresetTree {
    type Model = CoresetModel;

    fn observe(&mut self, batch: &Matrix) -> Result<()> {
        if batch.nrows() == 0 {
            return Ok(());
        }
        let _batch_span = kr_obs::span!("stream.batch", "rows" => batch.nrows());
        kr_obs::counter!("stream.batch_rows", batch.nrows());
        if !batch.all_finite() {
            return Err(CoreError::NonFiniteInput);
        }
        match self.m {
            None => {
                if batch.ncols() == 0 {
                    return Err(CoreError::EmptyInput);
                }
                self.m = Some(batch.ncols());
            }
            Some(m) if m != batch.ncols() => {
                return Err(CoreError::InvalidConfig(format!(
                    "batch has {} features, stream started with {m}",
                    batch.ncols()
                )));
            }
            Some(_) => {}
        }
        for row in batch.rows_iter() {
            self.buffer.extend_from_slice(row);
            self.buffer_rows += 1;
            self.n_observed += 1;
            self.track_peak(0);
            // `>=`, not `==`: a mid-stream `with_leaf_size` below the
            // current fill must still flush on the next row instead of
            // letting the buffer grow unbounded.
            if self.buffer_rows >= self.leaf_size {
                self.flush_leaf();
            }
        }
        Ok(())
    }

    fn summary(&self) -> Result<WeightedDataset> {
        if self.n_observed == 0 {
            return Err(CoreError::EmptyInput);
        }
        let m = self.m.expect("observed implies known dimension");
        // Fixed order: levels ascending (newest mass first), buffer last.
        let mut rows = 0usize;
        let mut points = Matrix::zeros(self.live_representatives(), m);
        let mut weights = Vec::with_capacity(self.live_representatives());
        for node in self.levels.iter().flatten() {
            for (row, &w) in node.points.rows_iter().zip(&node.weights) {
                points.row_mut(rows).copy_from_slice(row);
                weights.push(w);
                rows += 1;
            }
        }
        for row in self.buffer.chunks_exact(m) {
            points.row_mut(rows).copy_from_slice(row);
            weights.push(1.0);
            rows += 1;
        }
        debug_assert_eq!(rows, points.nrows());
        Ok(WeightedDataset::new("coreset-tree", points, weights))
    }

    fn finalize(self) -> Result<CoresetModel> {
        let summary = self.summary()?;
        let model = WeightedKMeans::new(self.k)
            .with_n_init(self.n_init)
            .with_max_iter(self.max_iter)
            .with_seed(self.seed)
            .with_exec(self.exec.clone())
            .fit(&summary.points, &summary.weights)?;
        Ok(CoresetModel {
            centroids: model.centroids,
            compressed_inertia: model.inertia,
            n_observed: self.n_observed,
            n_representatives: summary.n_points(),
            peak_representatives: self.peak_representatives,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kr_datasets::stream::ChunkedReplay;

    fn run_stream(exec: ExecCtx, n: usize, batch: usize) -> (CoresetTree, usize) {
        let ds = kr_datasets::synthetic::blobs(n, 2, 4, 0.3, 33);
        let mut tree = CoresetTree::new(4, 16)
            .with_leaf_size(32)
            .with_seed(9)
            .with_exec(exec);
        for b in ChunkedReplay::new(&ds.data, batch, 4) {
            tree.observe(&b).unwrap();
        }
        let bound = tree.representative_bound();
        (tree, bound)
    }

    #[test]
    fn mass_is_conserved_and_bound_holds() {
        let (tree, bound) = run_stream(ExecCtx::serial(), 500, 48);
        let summary = tree.summary().unwrap();
        assert_eq!(summary.total_weight(), 500.0);
        assert!(summary.n_points() < 500, "no compression happened");
        assert!(
            tree.peak_representatives() <= bound,
            "peak {} over bound {bound}",
            tree.peak_representatives()
        );
    }

    #[test]
    fn finalize_clusters_the_coreset() {
        let (tree, _) = run_stream(ExecCtx::serial(), 400, 64);
        let model = tree.finalize().unwrap();
        assert_eq!(model.centroids.nrows(), 4);
        assert_eq!(model.n_observed, 400);
        assert!(model.centroids.all_finite());
        assert!(model.compressed_inertia.is_finite());
        assert!(model.peak_representatives <= 32 + 16 * 6);
    }

    #[test]
    fn small_streams_stay_lossless() {
        // Fewer points than the leaf buffer: the summary is the raw data.
        let data = Matrix::from_fn(10, 2, |i, j| (i * 2 + j) as f64);
        let mut tree = CoresetTree::new(2, 8).with_leaf_size(16);
        tree.observe(&data).unwrap();
        let summary = tree.summary().unwrap();
        assert_eq!(summary.n_points(), 10);
        assert!(summary.weights.iter().all(|&w| w == 1.0));
        assert_eq!(summary.points, data);
    }

    #[test]
    fn mid_stream_leaf_shrink_still_flushes() {
        // Shrinking the leaf buffer below its current fill must flush
        // on the next row rather than leaving the buffer growing
        // unbounded past the (new) capacity forever.
        let mut tree = CoresetTree::new(2, 8).with_leaf_size(64);
        tree.observe(&Matrix::from_fn(40, 2, |i, j| (i * 2 + j) as f64))
            .unwrap();
        tree = tree.with_leaf_size(16);
        tree.observe(&Matrix::from_fn(1, 2, |_, j| j as f64))
            .unwrap();
        // The 41 buffered rows were compressed into the ladder.
        assert_eq!(tree.buffer_rows, 0);
        assert!(tree.level_reps <= 8);
        assert_eq!(tree.summary().unwrap().total_weight(), 41.0);
    }

    #[test]
    fn rejects_bad_batches() {
        let mut tree = CoresetTree::new(2, 4);
        let mut bad = Matrix::zeros(3, 2);
        bad.set(1, 1, f64::INFINITY);
        assert!(matches!(tree.observe(&bad), Err(CoreError::NonFiniteInput)));
        assert!(matches!(tree.summary(), Err(CoreError::EmptyInput)));
        tree.observe(&Matrix::from_fn(3, 2, |i, j| (i + j) as f64))
            .unwrap();
        assert!(matches!(
            tree.observe(&Matrix::zeros(3, 4)),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn deterministic_given_seed_and_batches() {
        let (a, _) = run_stream(ExecCtx::serial(), 300, 50);
        let (b, _) = run_stream(ExecCtx::serial(), 300, 50);
        let (sa, sb) = (a.summary().unwrap(), b.summary().unwrap());
        assert_eq!(sa.points, sb.points);
        assert_eq!(sa.weights, sb.weights);
    }

    #[test]
    fn exec_determinism_pool_1_2_8_workers() {
        use kr_linalg::ThreadPool;
        use std::sync::Arc;
        let (reference, _) = run_stream(ExecCtx::serial(), 300, 50);
        let ref_model = reference.finalize().unwrap();
        for workers in [1usize, 2, 8] {
            let pool = Arc::new(ThreadPool::new(workers));
            let exec = ExecCtx::threaded(workers + 1).with_pool(Arc::clone(&pool));
            let (tree, _) = run_stream(exec, 300, 50);
            let model = tree.finalize().unwrap();
            assert_eq!(model.centroids, ref_model.centroids, "workers={workers}");
            assert_eq!(
                model.compressed_inertia.to_bits(),
                ref_model.compressed_inertia.to_bits()
            );
            assert_eq!(model.peak_representatives, ref_model.peak_representatives);
        }
    }
}
