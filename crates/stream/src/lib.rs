//! # kr-stream
//!
//! Bounded-memory **streaming summarization**: every batch algorithm in
//! the workspace assumes the full dataset is resident in one
//! [`Matrix`]; this crate turns the summarization machinery into
//! streaming form so data that arrives over time — or exceeds RAM — can
//! still be compressed into the paper's weighted-representative
//! summaries.
//!
//! * [`StreamSummarizer`] — the one trait every streaming algorithm
//!   implements: [`observe`](StreamSummarizer::observe) a batch,
//!   [`summary`](StreamSummarizer::summary) the current
//!   weighted-representative state, [`finalize`](StreamSummarizer::finalize)
//!   into a fitted model.
//! * [`MiniBatchKrKMeans`] — Sculley-style
//!   mini-batch updates through the Khatri-Rao centroid structure:
//!   per-batch nearest-centroid assignment on the blocked
//!   [`kr_linalg::ExecCtx`] kernels, cumulative sufficient statistics
//!   ([`kr_core::stats::SuffStats`]), and the Proposition 6.1 closed
//!   forms as the (implicitly `1/N`-decaying) centroid update.
//! * [`CoresetTree`] — a merge-reduce tree of
//!   weighted representatives ([`kr_datasets::weighted::WeightedDataset`]
//!   nodes) compressed per level with the existing
//!   [`kr_core::baselines::WeightedKMeans`] machinery, with a provable
//!   bound on the number of live representatives.
//!
//! Feed either summarizer from
//! [`kr_datasets::stream::ChunkedReplay`] to compare streaming results
//! against batch ground truth (the EXPERIMENTS.md batch-parity
//! protocol).
//!
//! **Determinism contract.** Fixed batch geometry plus ordered merges:
//! every per-batch kernel is chunk-parallel with thread-invariant
//! results, every accumulation happens in point/batch order, and every
//! RNG stream derives from the configured seed — so both summarizers
//! are bitwise identical at any pool size (CI-enforced at 1/2/8
//! workers, like the batch algorithms).
//!
//! ```
//! use kr_datasets::stream::ChunkedReplay;
//! use kr_stream::{MiniBatchKrKMeans, StreamSummarizer};
//!
//! let ds = kr_datasets::synthetic::blobs(240, 2, 9, 0.3, 5);
//! let mut summarizer = MiniBatchKrKMeans::new(vec![3, 3]).with_seed(7);
//! for batch in ChunkedReplay::new(&ds.data, 60, 1) {
//!     summarizer.observe(&batch).unwrap();
//! }
//! // 6 stored protocentroids summarize all 9 clusters of the stream.
//! let model = summarizer.finalize().unwrap();
//! assert_eq!(model.centroids().nrows(), 9);
//! assert_eq!(model.n_observed, 240);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coreset;
pub mod minibatch;

pub use coreset::{CoresetModel, CoresetTree};
pub use minibatch::{MiniBatchKrKMeans, MiniBatchKrModel};

use kr_core::Result;
use kr_datasets::weighted::WeightedDataset;
use kr_linalg::Matrix;

/// A bounded-memory summarizer consuming a stream of row batches.
///
/// Implementations hold state whose size depends on their configured
/// budget — never on the number of points observed. The lifecycle is
/// `observe`* → (`summary`)* → `finalize`.
pub trait StreamSummarizer {
    /// The fitted model [`finalize`](StreamSummarizer::finalize)
    /// produces.
    type Model;

    /// Folds one batch of rows into the summarizer's state. Batches of
    /// zero rows are ignored; feature dimensions must agree across
    /// batches.
    fn observe(&mut self, batch: &Matrix) -> Result<()>;

    /// The current summary as weighted representatives — the shape the
    /// weighted solvers ([`kr_core::baselines::WeightedKMeans`],
    /// [`kr_core::baselines::RkMeans`]) consume. Errors until at least
    /// one point has been observed.
    fn summary(&self) -> Result<WeightedDataset>;

    /// Consumes the summarizer, producing its fitted model. Errors
    /// until at least one point has been observed.
    fn finalize(self) -> Result<Self::Model>;
}
