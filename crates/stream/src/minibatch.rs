//! Mini-batch Khatri-Rao k-Means: Sculley-style streaming updates
//! through the protocentroid structure.
//!
//! Sculley's mini-batch k-Means (WWW 2010) assigns each incoming batch
//! to the current centroids and moves every centroid toward the batch
//! mean of its members with a per-center learning rate `1/N_c` (`N_c` =
//! points the center has absorbed so far). This implementation lifts
//! that scheme onto the Khatri-Rao centroid structure by working in
//! **sufficient-statistics space**: the stream accumulates per-cluster
//! coordinate sums and counts ([`SuffStats::observe_batch`], strictly in
//! point order), and after every batch the protocentroid sets are
//! recomputed from the *cumulative* statistics with the Proposition 6.1
//! closed forms ([`prop61_update_from_stats`]). For unconstrained
//! centroids that recomputation equals Sculley's running average
//! exactly — each batch shifts cluster `c` toward its batch mean by
//! `n_batch,c / N_c`, the same `1/N` -decaying learning rate — so the KR
//! version inherits the decay while keeping the `Σ h_l` -vector summary
//! structure.
//!
//! Assignments of earlier batches are *not* revisited (their points are
//! gone); their statistics stay frozen under the labels they got when
//! they streamed past — the standard mini-batch staleness trade-off.
//!
//! Memory: `O((Σ h_l + ∏ h_l) · m)` — protocentroids plus the
//! sufficient-statistics block — independent of the stream length.
//!
//! ```
//! use kr_stream::{MiniBatchKrKMeans, StreamSummarizer};
//! use kr_linalg::Matrix;
//!
//! let batch = Matrix::from_rows(&[
//!     vec![0.0, 0.0], vec![0.0, 4.0], vec![4.0, 0.0], vec![4.0, 4.0],
//! ]).unwrap();
//! let mut mb = MiniBatchKrKMeans::new(vec![2, 2]).with_seed(3);
//! mb.observe(&batch).unwrap();
//! let summary = mb.summary().unwrap();
//! assert_eq!(summary.total_weight(), 4.0); // every point accounted for
//! ```

use crate::StreamSummarizer;
use kr_core::aggregator::Aggregator;

/// Cap on the per-batch inertia telemetry history: entries beyond this
/// are dropped (the latest batch's value stays available via
/// [`MiniBatchKrModel::last_batch_inertia`]), so the summarizer's state
/// stays bounded no matter how many batches the stream delivers.
const TELEMETRY_CAP: usize = 1024;
use kr_core::assign::{CcBounds, PruneStats};
use kr_core::kmeans::nearest_assignments_with;
use kr_core::kr_kmeans::{prop61_update_from_stats, KrKMeans};
use kr_core::operator::khatri_rao;
use kr_core::stats::SuffStats;
use kr_core::{CoreError, Result};
use kr_datasets::weighted::WeightedDataset;
use kr_linalg::{ExecCtx, Matrix, PruneMode};

/// Largest materialized centroid count for which the streaming path
/// keeps a persistent `k x k` center–center bound matrix. Beyond this
/// the quadratic bound state would dwarf the summary itself, so the
/// batch assignment falls back to the exhaustive scan.
const CC_BOUNDS_MAX_K: usize = 512;

/// Streaming mini-batch KR-k-Means runner (builder style).
///
/// The first observed batch seeds the protocentroids with a full
/// [`KrKMeans`] fit over that batch alone (restarts + warm start,
/// deterministic in the configured seed); every batch — including the
/// first — then flows through the assignment → accumulate → closed-form
/// update cycle described in the module docs.
#[derive(Debug, Clone)]
pub struct MiniBatchKrKMeans {
    hs: Vec<usize>,
    aggregator: Aggregator,
    init_restarts: usize,
    init_max_iter: usize,
    seed: u64,
    exec: ExecCtx,
    state: Option<MbState>,
}

/// Mutable streaming state, created on the first batch.
#[derive(Debug, Clone)]
struct MbState {
    sets: Vec<Matrix>,
    acc: SuffStats,
    n_observed: usize,
    batch_inertia: Vec<f64>,
    last_batch_inertia: f64,
    /// Persistent center–center lower bounds surviving across batches
    /// (`None` when pruning is off or `k` exceeds [`CC_BOUNDS_MAX_K`]).
    /// Each batch measures the centroid drift since the previous one and
    /// decays the bounds by it, so stale bounds can never mis-assign —
    /// the assignment stays bitwise identical to the exhaustive scan.
    pruner: Option<CcBounds>,
}

/// The model a finished [`MiniBatchKrKMeans`] stream produces.
#[derive(Debug, Clone)]
pub struct MiniBatchKrModel {
    /// The `p` protocentroid sets (set `l` is `h_l x m`).
    pub protocentroids: Vec<Matrix>,
    /// Aggregator combining the sets.
    pub aggregator: Aggregator,
    /// Total points observed.
    pub n_observed: usize,
    /// Pre-update inertia of the first (up to) 1024 observed batches
    /// (sum of squared distances of a batch's points to the centroids
    /// they were assigned against) — the streaming convergence
    /// telemetry the `fig_stream_scalability` harness plots. Capped so
    /// the summarizer's state stays independent of the stream length.
    pub batch_inertia: Vec<f64>,
    /// Pre-update inertia of the most recent batch (tracked even past
    /// the `batch_inertia` cap); NaN before any batch was observed.
    pub last_batch_inertia: f64,
}

impl MiniBatchKrModel {
    /// Materializes the full centroid grid (`∏ h_l x m`).
    pub fn centroids(&self) -> Matrix {
        khatri_rao(&self.protocentroids, self.aggregator).expect("validated sets")
    }

    /// Number of stored summary parameters (`Σ h_l · m`).
    pub fn n_parameters(&self) -> usize {
        self.protocentroids.iter().map(|s| s.len()).sum()
    }
}

impl MiniBatchKrKMeans {
    /// Creates a streaming runner for protocentroid set sizes `hs` with
    /// the sum aggregator, 4 seeding restarts on the first batch, and a
    /// serial execution context.
    pub fn new(hs: Vec<usize>) -> Self {
        MiniBatchKrKMeans {
            hs,
            aggregator: Aggregator::Sum,
            init_restarts: 4,
            init_max_iter: 100,
            seed: 0,
            exec: ExecCtx::serial(),
            state: None,
        }
    }

    /// Sets the aggregator (`⊕ ∈ {+, ×}`).
    pub fn with_aggregator(mut self, aggregator: Aggregator) -> Self {
        self.aggregator = aggregator;
        self
    }

    /// Sets the restart count of the first-batch seeding fit.
    pub fn with_init_restarts(mut self, restarts: usize) -> Self {
        self.init_restarts = restarts.max(1);
        self
    }

    /// Sets the iteration cap of the first-batch seeding fit.
    pub fn with_init_max_iter(mut self, max_iter: usize) -> Self {
        self.init_max_iter = max_iter.max(1);
        self
    }

    /// Sets the RNG seed (streams are deterministic given the seed and
    /// the batch sequence).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the thread budget (shorthand for an [`ExecCtx`] on the
    /// global pool; results are identical at any thread count).
    pub fn with_threads(self, threads: usize) -> Self {
        let exec = self.exec.clone().with_threads(threads);
        self.with_exec(exec)
    }

    /// Sets the execution context used by the per-batch assignment step.
    pub fn with_exec(mut self, exec: ExecCtx) -> Self {
        self.exec = exec;
        self
    }

    /// Total points observed so far.
    pub fn n_observed(&self) -> usize {
        self.state.as_ref().map_or(0, |s| s.n_observed)
    }

    /// Pre-update inertia of every batch observed so far (see
    /// [`MiniBatchKrModel::batch_inertia`]).
    pub fn batch_inertia(&self) -> &[f64] {
        self.state.as_ref().map_or(&[], |s| &s.batch_inertia)
    }

    /// Seeds the protocentroids from the first batch: a full KR-k-Means
    /// fit over that batch alone, on an RNG stream derived from the
    /// configured seed.
    fn init_state(&self, batch: &Matrix) -> Result<MbState> {
        let fit = KrKMeans::new(self.hs.clone())
            .with_aggregator(self.aggregator)
            .with_n_init(self.init_restarts)
            .with_max_iter(self.init_max_iter)
            .with_seed(self.seed)
            .with_exec(self.exec.clone())
            .fit(batch)?;
        let k: usize = self.hs.iter().product();
        let pruner = if self.exec.prune_mode() != PruneMode::Off && k <= CC_BOUNDS_MAX_K {
            Some(CcBounds::default())
        } else {
            None
        };
        Ok(MbState {
            sets: fit.protocentroids,
            acc: SuffStats::zeros(k, batch.ncols()),
            n_observed: 0,
            batch_inertia: Vec::new(),
            last_batch_inertia: f64::NAN,
            pruner,
        })
    }

    /// Distance-evaluation pruning counters accumulated by the
    /// persistent cross-batch bounds so far (zeros when pruning is off).
    pub fn prune_stats(&self) -> PruneStats {
        self.state
            .as_ref()
            .and_then(|s| s.pruner.as_ref())
            .map_or_else(PruneStats::default, |p| p.stats())
    }

    /// How many times the persistent center–center bound matrix was
    /// rebuilt from exact distances (including the initial build) —
    /// measured drift past the decay budget forces a rebuild, the
    /// invalidation path the streaming regression test pins.
    pub fn prune_rebuilds(&self) -> u64 {
        self.state
            .as_ref()
            .and_then(|s| s.pruner.as_ref())
            .map_or(0, |p| p.rebuilds())
    }
}

impl StreamSummarizer for MiniBatchKrKMeans {
    type Model = MiniBatchKrModel;

    fn observe(&mut self, batch: &Matrix) -> Result<()> {
        if batch.nrows() == 0 {
            return Ok(());
        }
        let _batch_span = kr_obs::span!("stream.batch", "rows" => batch.nrows());
        kr_obs::counter!("stream.batch_rows", batch.nrows());
        if !batch.all_finite() {
            return Err(CoreError::NonFiniteInput);
        }
        if self.state.is_none() {
            self.state = Some(self.init_state(batch)?);
        }
        let state = self.state.as_mut().expect("initialized above");
        if batch.ncols() != state.acc.m() {
            return Err(CoreError::InvalidConfig(format!(
                "batch has {} features, stream started with {}",
                batch.ncols(),
                state.acc.m()
            )));
        }
        let centroids = khatri_rao(&state.sets, self.aggregator).expect("validated sets");
        let (labels, dmin) = match state.pruner.as_mut() {
            Some(pruner) => {
                // Bounds persist from the previous batch; sync measures
                // the centroid drift since then and decays (or rebuilds)
                // them before they gate this batch's scan.
                pruner.sync(&centroids);
                pruner.assign(batch, &centroids, &self.exec)
            }
            None => nearest_assignments_with(batch, &centroids, &self.exec),
        };
        state.last_batch_inertia = dmin.iter().sum();
        kr_obs::gauge!("stream.batch_inertia", state.last_batch_inertia);
        if state.batch_inertia.len() < TELEMETRY_CAP {
            state.batch_inertia.push(state.last_batch_inertia);
        }
        state.acc.observe_batch(batch, &labels)?;
        state.n_observed += batch.nrows();
        // Closed-form recomputation from cumulative statistics: clusters
        // whose combinations hold no mass keep their protocentroids (the
        // stream has no raw data to reseed from, like the federated
        // server).
        prop61_update_from_stats(
            &state.acc.sums,
            &state.acc.counts_usize(),
            &mut state.sets,
            self.aggregator,
        );
        Ok(())
    }

    fn summary(&self) -> Result<WeightedDataset> {
        let state = self.state.as_ref().ok_or(CoreError::EmptyInput)?;
        let centroids = khatri_rao(&state.sets, self.aggregator).expect("validated sets");
        let occupied: Vec<usize> = state
            .acc
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i)
            .collect();
        let points = centroids.select_rows(&occupied);
        let weights: Vec<f64> = occupied
            .iter()
            .map(|&i| state.acc.counts[i] as f64)
            .collect();
        Ok(WeightedDataset::new("minibatch-kr", points, weights))
    }

    fn finalize(self) -> Result<MiniBatchKrModel> {
        let state = self.state.ok_or(CoreError::EmptyInput)?;
        Ok(MiniBatchKrModel {
            protocentroids: state.sets,
            aggregator: self.aggregator,
            n_observed: state.n_observed,
            batch_inertia: state.batch_inertia,
            last_batch_inertia: state.last_batch_inertia,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kr_datasets::stream::ChunkedReplay;

    fn run_stream(exec: ExecCtx, batch: usize) -> MiniBatchKrModel {
        let ds = kr_datasets::synthetic::blobs(240, 2, 9, 0.3, 21);
        let mut mb = MiniBatchKrKMeans::new(vec![3, 3])
            .with_seed(5)
            .with_exec(exec);
        for b in ChunkedReplay::new(&ds.data, batch, 2) {
            mb.observe(&b).unwrap();
        }
        mb.finalize().unwrap()
    }

    #[test]
    fn summarizes_a_stream() {
        let model = run_stream(ExecCtx::serial(), 60);
        assert_eq!(model.n_observed, 240);
        assert_eq!(model.batch_inertia.len(), 4);
        assert_eq!(model.centroids().nrows(), 9);
        assert_eq!(model.n_parameters(), (3 + 3) * 2);
        assert!(model.centroids().all_finite());
    }

    #[test]
    fn summary_mass_equals_points_observed() {
        let ds = kr_datasets::synthetic::blobs(100, 3, 4, 0.4, 8);
        let mut mb = MiniBatchKrKMeans::new(vec![2, 2]).with_seed(1);
        for b in ChunkedReplay::new(&ds.data, 32, 0) {
            mb.observe(&b).unwrap();
        }
        let summary = mb.summary().unwrap();
        assert_eq!(summary.total_weight(), 100.0);
        assert!(summary.n_points() <= 4);
    }

    #[test]
    fn empty_batches_are_ignored_and_errors_surface() {
        let mut mb = MiniBatchKrKMeans::new(vec![2, 2]);
        mb.observe(&Matrix::zeros(0, 3)).unwrap();
        assert!(matches!(mb.summary(), Err(CoreError::EmptyInput)));
        let mut bad = Matrix::zeros(8, 2);
        bad.set(0, 0, f64::NAN);
        assert!(matches!(mb.observe(&bad), Err(CoreError::NonFiniteInput)));
        // Too few rows for the grid on the seeding batch.
        assert!(matches!(
            mb.observe(&Matrix::zeros(1, 2)),
            Err(CoreError::TooFewPoints { .. })
        ));
        // Dimension drift after the stream started.
        let ok = Matrix::from_fn(8, 2, |i, j| (i * 2 + j) as f64);
        mb.observe(&ok).unwrap();
        assert!(matches!(
            mb.observe(&Matrix::zeros(4, 3)),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn telemetry_history_is_capped() {
        // State must stay bounded on arbitrarily long streams: the
        // history stops growing at the cap while the latest batch's
        // inertia stays tracked.
        let batch = Matrix::from_fn(8, 2, |i, j| ((i * 2 + j) % 5) as f64);
        let mut mb = MiniBatchKrKMeans::new(vec![2, 2])
            .with_seed(3)
            .with_init_restarts(1);
        for _ in 0..(TELEMETRY_CAP + 10) {
            mb.observe(&batch).unwrap();
        }
        assert_eq!(mb.batch_inertia().len(), TELEMETRY_CAP);
        assert_eq!(mb.n_observed(), (TELEMETRY_CAP + 10) * 8);
        let model = mb.finalize().unwrap();
        assert!(model.last_batch_inertia.is_finite());
    }

    #[test]
    fn deterministic_given_seed_and_batches() {
        let a = run_stream(ExecCtx::serial(), 60);
        let b = run_stream(ExecCtx::serial(), 60);
        assert_eq!(a.protocentroids, b.protocentroids);
        for (x, y) in a.batch_inertia.iter().zip(&b.batch_inertia) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn persistent_bounds_match_exhaustive_and_invalidate_on_drift() {
        // Regression test for the cross-batch bound path: a stream whose
        // batches come from *shifting* distributions drags the centroids
        // along (Prop 6.1 updates follow the data), which must (a) never
        // change a single output bit vs. the pruning-off path and
        // (b) eventually blow the decay budget and force bound rebuilds.
        let run = |mode: PruneMode| {
            let mut mb = MiniBatchKrKMeans::new(vec![2, 2])
                .with_seed(9)
                .with_init_restarts(2)
                .with_exec(ExecCtx::serial().with_prune_mode(mode));
            for step in 0..12 {
                // Gradual mean drift: each batch sits 0.8 further out.
                let shift = step as f64 * 0.8;
                let batch =
                    Matrix::from_fn(24, 2, |i, j| ((i * 3 + j * 5) % 11) as f64 * 0.5 + shift);
                mb.observe(&batch).unwrap();
            }
            let rebuilds = mb.prune_rebuilds();
            let stats = mb.prune_stats();
            (mb.finalize().unwrap(), rebuilds, stats)
        };
        let (reference, ref_rebuilds, ref_stats) = run(PruneMode::Off);
        assert_eq!(ref_rebuilds, 0, "pruning off must not build bounds");
        assert_eq!(ref_stats, PruneStats::default());
        let (pruned, rebuilds, stats) = run(PruneMode::Auto);
        assert_eq!(pruned.protocentroids, reference.protocentroids);
        for (a, b) in pruned.batch_inertia.iter().zip(&reference.batch_inertia) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            pruned.last_batch_inertia.to_bits(),
            reference.last_batch_inertia.to_bits()
        );
        // Drift measured against the snapshots exceeded the decay budget
        // at least once past the initial build.
        assert!(rebuilds >= 2, "rebuilds {rebuilds}");
        assert!(stats.dists_computed > 0);
        assert!(stats.bound_updates > 0);
    }

    #[test]
    fn exec_determinism_pool_1_2_8_workers() {
        use kr_linalg::ThreadPool;
        use std::sync::Arc;
        let reference = run_stream(ExecCtx::serial(), 60);
        for workers in [1usize, 2, 8] {
            let pool = Arc::new(ThreadPool::new(workers));
            let exec = ExecCtx::threaded(workers + 1).with_pool(Arc::clone(&pool));
            let model = run_stream(exec, 60);
            assert_eq!(
                model.protocentroids, reference.protocentroids,
                "workers={workers}"
            );
            for (a, b) in model.batch_inertia.iter().zip(&reference.batch_inertia) {
                assert_eq!(a.to_bits(), b.to_bits(), "workers={workers}");
            }
        }
    }
}
