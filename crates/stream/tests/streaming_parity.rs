//! Batch-parity acceptance tests (EXPERIMENTS.md "Streaming"): a
//! streaming run over a chunked replay of a seed dataset must reach
//! inertia within a documented factor of the batch `KrKMeans` fit on the
//! same (resident) data, while the coreset tree's peak representative
//! count stays under its configured bound.

use kr_core::kr_kmeans::KrKMeans;
use kr_datasets::stream::ChunkedReplay;
use kr_linalg::Matrix;
use kr_stream::{CoresetTree, MiniBatchKrKMeans, StreamSummarizer};

/// The documented batch-parity factor: one-pass streaming inertia must
/// stay within this multiple of the batch KR-k-Means fit. The batch fit
/// revisits every point each iteration and takes the best of many
/// restarts; the streams see each point once — a small constant gap is
/// the price of bounded memory (see EXPERIMENTS.md "Streaming" for the
/// protocol).
const PARITY_FACTOR: f64 = 1.5;

fn seed_dataset() -> kr_datasets::Dataset {
    // The blobs generator behind Figure 8's scalability sweeps: 9
    // clusters with a 3x3 budget split, well inside every algorithm's
    // reach so the comparison measures the streaming machinery.
    kr_datasets::synthetic::blobs(600, 4, 9, 0.4, 1234)
}

fn batch_reference(data: &Matrix) -> f64 {
    KrKMeans::new(vec![3, 3])
        .with_n_init(5)
        .with_seed(7)
        .fit(data)
        .unwrap()
        .inertia
}

#[test]
fn minibatch_stream_reaches_batch_parity() {
    let ds = seed_dataset();
    let batch_inertia = batch_reference(&ds.data);

    let mut mb = MiniBatchKrKMeans::new(vec![3, 3]).with_seed(7);
    for batch in ChunkedReplay::new(&ds.data, 100, 3) {
        mb.observe(&batch).unwrap();
    }
    let model = mb.finalize().unwrap();
    assert_eq!(model.n_observed, 600);
    let stream_inertia = kr_metrics::inertia(&ds.data, &model.centroids());
    assert!(
        stream_inertia <= PARITY_FACTOR * batch_inertia,
        "mini-batch stream {stream_inertia} vs batch {batch_inertia} \
         (factor {PARITY_FACTOR})"
    );
}

#[test]
fn coreset_stream_reaches_batch_parity_within_budget() {
    let ds = seed_dataset();
    let batch_inertia = batch_reference(&ds.data);

    let mut tree = CoresetTree::new(9, 36).with_leaf_size(72).with_seed(7);
    for batch in ChunkedReplay::new(&ds.data, 100, 3) {
        tree.observe(&batch).unwrap();
    }
    // The bound is the headline: bounded memory no matter the stream
    // length.
    let bound = tree.representative_bound();
    let peak = tree.peak_representatives();
    assert!(peak <= bound, "peak {peak} over bound {bound}");
    assert!(bound < ds.data.nrows(), "bound must beat buffering it all");

    let model = tree.finalize().unwrap();
    assert_eq!(model.n_observed, 600);
    assert!(model.n_representatives <= bound);
    let stream_inertia = kr_metrics::inertia(&ds.data, &model.centroids);
    assert!(
        stream_inertia <= PARITY_FACTOR * batch_inertia,
        "coreset stream {stream_inertia} vs batch {batch_inertia} \
         (factor {PARITY_FACTOR})"
    );
}

#[test]
fn longer_streams_keep_the_same_bound() {
    // Double the stream, identical configuration: the representative
    // bound grows only logarithmically (one extra level), never with n.
    let short = kr_datasets::synthetic::blobs(500, 3, 4, 0.5, 9);
    let long = kr_datasets::synthetic::blobs(2000, 3, 4, 0.5, 9);
    let run = |data: &Matrix| {
        let mut tree = CoresetTree::new(4, 16).with_leaf_size(32).with_seed(2);
        for batch in ChunkedReplay::new(data, 64, 0) {
            tree.observe(&batch).unwrap();
        }
        (tree.peak_representatives(), tree.representative_bound())
    };
    let (peak_s, bound_s) = run(&short.data);
    let (peak_l, bound_l) = run(&long.data);
    assert!(peak_s <= bound_s && peak_l <= bound_l);
    // 4x the points adds at most two ladder levels to the bound.
    assert!(
        bound_l <= bound_s + 2 * 16,
        "bound grew too fast: {bound_s} -> {bound_l}"
    );
}
