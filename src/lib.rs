//! # khatri-rao-clustering
//!
//! Umbrella crate for the Khatri-Rao clustering reproduction ("Khatri-Rao
//! Clustering for Data Summarization", EDBT 2026). Re-exports the public
//! API of every workspace crate so examples, integration tests, and
//! downstream users need a single dependency.
//!
//! ## Quickstart
//!
//! ```
//! use khatri_rao_clustering::prelude::*;
//!
//! // A dataset whose 9 clusters have additive Khatri-Rao structure.
//! let ds = kr_datasets::synthetic::blobs(300, 2, 9, 0.5, 42);
//! // Summarize with 3 + 3 protocentroids instead of 9 centroids.
//! let model = KrKMeans::new(vec![3, 3])
//!     .with_seed(7)
//!     .with_n_init(5)
//!     .fit(&ds.data)
//!     .unwrap();
//! assert_eq!(model.centroids().nrows(), 9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use kr_autodiff as autodiff;
pub use kr_core as core;
pub use kr_datasets as datasets;
pub use kr_deep as deep;
pub use kr_federated as federated;
pub use kr_linalg as linalg;
pub use kr_metrics as metrics;
pub use kr_stream as stream;

/// Observability layer (spans/counters/histograms + JSONL traces).
/// Present only with the `obs` cargo feature, which also compiles the
/// instrumentation call sites across the stack; see EXPERIMENTS.md
/// "Observability". Recording never changes numeric results
/// (`tests/obs_determinism.rs` pins this bitwise).
#[cfg(feature = "obs")]
pub use kr_obs as obs;

/// Common imports for library users.
///
/// Brings the main entry points into scope and re-exports every workspace
/// crate under its canonical `kr_*` name, so downstream code (and the
/// quickstart above) can write `kr_datasets::synthetic::blobs(..)` with
/// only `khatri_rao_clustering` as a dependency.
pub mod prelude {
    pub use crate::{
        autodiff as kr_autodiff, core as kr_core, datasets as kr_datasets, deep as kr_deep,
        federated as kr_federated, linalg as kr_linalg, metrics as kr_metrics, stream as kr_stream,
    };
    pub use ::kr_core::aggregator::Aggregator;
    pub use ::kr_core::kmeans::KMeans;
    pub use ::kr_core::kr_kmeans::KrKMeans;
    pub use ::kr_linalg::{ExecCtx, Matrix, ThreadPool, Tiling};
    pub use ::kr_metrics::{
        adjusted_rand_index, inertia, normalized_mutual_information,
        unsupervised_clustering_accuracy,
    };
    pub use ::kr_stream::{CoresetTree, MiniBatchKrKMeans, StreamSummarizer};
}
