//! Quickstart: summarize a dataset with Khatri-Rao-k-Means and compare
//! against standard k-Means at the same parameter budget.
//!
//! Run with: `cargo run --release --example quickstart`

use khatri_rao_clustering::prelude::*;
use kr_core::kmeans::KMeans;

fn main() {
    // 100 Gaussian clusters in 2-D, the paper's `Blobs` setup.
    let ds = kr_datasets::synthetic::blobs(2000, 2, 100, 1.0, 42).standardized();
    let (h1, h2) = kr_datasets::table1::balanced_factor_pair(100);

    // Khatri-Rao-k-Means: 10 + 10 protocentroids represent 100 centroids.
    let kr = KrKMeans::new(vec![h1, h2])
        .with_aggregator(Aggregator::Sum)
        .with_n_init(10)
        .with_seed(7)
        .fit(&ds.data)
        .expect("valid input");

    // Same parameter budget for plain k-Means: h1 + h2 = 20 centroids.
    let small = KMeans::new(h1 + h2)
        .with_n_init(10)
        .with_seed(7)
        .fit(&ds.data)
        .unwrap();
    // The optimistic bound: k-Means with all 100 centroids.
    let full = KMeans::new(100)
        .with_n_init(10)
        .with_seed(7)
        .fit(&ds.data)
        .unwrap();

    println!("Blobs (n=2000, m=2, 100 ground-truth clusters)");
    println!(
        "{:<34}{:>10}{:>12}{:>8}",
        "algorithm", "vectors", "inertia", "ACC"
    );
    for (name, vectors, inertia, labels) in [
        (
            "Khatri-Rao-k-Means-+ (h1+h2)",
            h1 + h2,
            kr.inertia,
            &kr.labels,
        ),
        ("k-Means (h1+h2)", h1 + h2, small.inertia, &small.labels),
        ("k-Means (h1*h2)", 100, full.inertia, &full.labels),
    ] {
        let acc = unsupervised_clustering_accuracy(labels, &ds.labels).unwrap();
        println!("{name:<34}{vectors:>10}{inertia:>12.1}{acc:>8.3}");
    }
    println!(
        "\nKR summary stores {} parameters vs {} for the full k-Means summary ({:.0}% saved).",
        kr.n_parameters(),
        100 * ds.data.ncols(),
        100.0 * (1.0 - kr.n_parameters() as f64 / (100 * ds.data.ncols()) as f64)
    );
}
