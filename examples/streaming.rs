//! Streaming summarization: compress a chunked replay of a dataset with
//! bounded memory and compare against the resident-data batch fit.
//!
//! Run with: `cargo run --release --example streaming`
//!
//! With the `obs` feature, setting `KR_OBS=trace.jsonl` captures a
//! JSONL trace of the run (see EXPERIMENTS.md "Observability"):
//! `KR_OBS=trace.jsonl cargo run --example streaming --features obs`

use khatri_rao_clustering::prelude::*;
use kr_datasets::stream::ChunkedReplay;

fn main() {
    // Recording never changes numeric results; the guard writes the
    // trace on drop if KR_OBS is set (and is a no-op otherwise).
    #[cfg(feature = "obs")]
    let _trace = khatri_rao_clustering::obs::init_from_env();

    // 9 Gaussian clusters; the stream sees the rows in seeded shuffled
    // order, 200 at a time — never all at once.
    let ds = kr_datasets::synthetic::blobs(2000, 4, 9, 0.4, 42);
    let batch_size = 200;

    // Batch reference: the fit a resident dataset would get.
    let batch = KrKMeans::new(vec![3, 3])
        .with_n_init(5)
        .with_seed(7)
        .fit(&ds.data)
        .expect("valid input");

    // Mini-batch KR-k-Means: protocentroids + sufficient statistics are
    // the entire state, independent of the stream length.
    let mut mb = MiniBatchKrKMeans::new(vec![3, 3]).with_seed(7);
    for chunk in ChunkedReplay::new(&ds.data, batch_size, 1) {
        mb.observe(&chunk).expect("finite batches");
    }
    let mb_model = mb.finalize().unwrap();

    // Coreset tree: merge-reduce ladder of weighted representatives,
    // peak count provably bounded by leaf_size + budget * (levels + 1).
    let mut tree = CoresetTree::new(9, 36).with_leaf_size(72).with_seed(7);
    for chunk in ChunkedReplay::new(&ds.data, batch_size, 1) {
        tree.observe(&chunk).expect("finite batches");
    }
    let (peak, bound) = (tree.peak_representatives(), tree.representative_bound());
    let tree_model = tree.finalize().unwrap();

    println!("Streaming 2000 points in batches of {batch_size} (9 clusters, m=4)");
    println!("{:<26}{:>12}{:>10}", "summarizer", "inertia", "ratio");
    for (name, inertia) in [
        ("batch KrKMeans(3x3)", batch.inertia),
        (
            "MiniBatchKrKMeans(3x3)",
            inertia(&ds.data, &mb_model.centroids()),
        ),
        (
            "CoresetTree(k=9, b=36)",
            inertia(&ds.data, &tree_model.centroids),
        ),
    ] {
        println!("{name:<26}{inertia:>12.1}{:>10.3}", inertia / batch.inertia);
    }
    println!(
        "coreset live representatives: peak {peak} <= bound {bound} \
         (vs {} raw points)",
        ds.data.nrows()
    );
    assert!(peak <= bound, "representative bound violated");
}
