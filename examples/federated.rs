//! Case study 2 (paper Section 9.4, Figure 10): federated clustering.
//!
//! Khatri-Rao-FkM broadcasts protocentroids instead of centroids, so at
//! parity server→client communication it reaches lower inertia.
//!
//! Run with: `cargo run --release --example federated`

use kr_core::aggregator::Aggregator;
use kr_federated::server::{Algo, FederatedServer, Resilience};
use kr_federated::transport::local::connect_shards;
use kr_federated::{faults, shard_by_assignment, FaultPlan, FkM, KrFkM};
use kr_linalg::ExecCtx;
use std::sync::Arc;

fn main() {
    // FEMNIST-like glyph digits, sharded non-IID over 10 clients.
    let (ds, client_of) = kr_datasets::image::femnist_like(1500, 10, 3);
    let clients = shard_by_assignment(&ds.data, &client_of, 10);

    let rounds = 8;
    let fkm = FkM {
        k: 10,
        rounds,
        seed: 1,
    }
    .run(&clients)
    .unwrap();
    let kr = KrFkM {
        hs: vec![5, 2],
        aggregator: Aggregator::Product,
        rounds,
        seed: 1,
    }
    .run(&clients)
    .unwrap();

    println!("Federated k-Means vs Khatri-Rao FkM (10 clients, k = 10)");
    println!(
        "{:<8}{:>16}{:>12}{:>16}{:>12}",
        "round", "FkM down(KB)", "inertia", "KR down(KB)", "inertia"
    );
    for (f, k) in fkm.history.iter().zip(kr.history.iter()) {
        println!(
            "{:<8}{:>16.1}{:>12.1}{:>16.1}{:>12.1}",
            f.round,
            f.downlink_bytes as f64 / 1024.0,
            f.inertia,
            k.downlink_bytes as f64 / 1024.0,
            k.inertia
        );
    }
    let f_last = fkm.history.last().unwrap();
    let k_last = kr.history.last().unwrap();
    println!(
        "\nAfter {rounds} rounds KR-FkM used {:.0}% of FkM's downlink bytes.",
        100.0 * k_last.downlink_bytes as f64 / f_last.downlink_bytes as f64
    );

    // ---- Failure axis: the same KR-FkM run under seeded reply drops,
    // with quorum rounds (merge renormalizes over the survivors) and
    // masked uploads (pairwise additive masking; bitwise identical to
    // plaintext on the server side). Every run is a pure function of
    // (seed, plan), so these numbers reproduce exactly.
    println!("\nFailure axis: seeded drops, quorum rounds, masked uploads (KR-FkM)");
    println!(
        "{:<10}{:>12}{:>12}{:>14}{:>12}",
        "drop", "inertia", "vs clean", "up (KB)", "failures"
    );
    let exec = ExecCtx::serial();
    let mut clean_inertia = f64::NAN;
    for drop_pct in [0usize, 10, 30, 50] {
        let plan = Arc::new(FaultPlan::seeded_drops(
            7,
            clients.len(),
            rounds,
            drop_pct as f64 / 100.0,
        ));
        let server = FederatedServer::new(
            Algo::KrFkm {
                hs: vec![5, 2],
                aggregator: Aggregator::Product,
            },
            rounds,
            1,
        )
        .with_resilience(Resilience {
            quorum: Some(1),
            mask_seed: Some(99),
            ..Resilience::default()
        });
        let model = server
            .drive(faults::wrap(&plan, connect_shards(&clients, &exec)), &exec)
            .unwrap();
        let last = model.history.last().unwrap();
        if drop_pct == 0 {
            clean_inertia = last.inertia;
        }
        let failures: usize = model.history.iter().map(|h| h.failures.len()).sum();
        println!(
            "{:<9}%{:>12.1}{:>11.3}x{:>14.1}{:>12}",
            drop_pct,
            last.inertia,
            last.inertia / clean_inertia,
            last.uplink_bytes as f64 / 1024.0,
            failures,
        );
    }
    println!("\nDropped uploads trade a little inertia for fewer bytes; no run panicked.");
}
