//! Case study 2 (paper Section 9.4, Figure 10): federated clustering.
//!
//! Khatri-Rao-FkM broadcasts protocentroids instead of centroids, so at
//! parity server→client communication it reaches lower inertia.
//!
//! Run with: `cargo run --release --example federated`

use kr_core::aggregator::Aggregator;
use kr_federated::{shard_by_assignment, FkM, KrFkM};

fn main() {
    // FEMNIST-like glyph digits, sharded non-IID over 10 clients.
    let (ds, client_of) = kr_datasets::image::femnist_like(1500, 10, 3);
    let clients = shard_by_assignment(&ds.data, &client_of, 10);

    let rounds = 8;
    let fkm = FkM {
        k: 10,
        rounds,
        seed: 1,
    }
    .run(&clients)
    .unwrap();
    let kr = KrFkM {
        hs: vec![5, 2],
        aggregator: Aggregator::Product,
        rounds,
        seed: 1,
    }
    .run(&clients)
    .unwrap();

    println!("Federated k-Means vs Khatri-Rao FkM (10 clients, k = 10)");
    println!(
        "{:<8}{:>16}{:>12}{:>16}{:>12}",
        "round", "FkM down(KB)", "inertia", "KR down(KB)", "inertia"
    );
    for (f, k) in fkm.history.iter().zip(kr.history.iter()) {
        println!(
            "{:<8}{:>16.1}{:>12.1}{:>16.1}{:>12.1}",
            f.round,
            f.downlink_bytes as f64 / 1024.0,
            f.inertia,
            k.downlink_bytes as f64 / 1024.0,
            k.inertia
        );
    }
    let f_last = fkm.history.last().unwrap();
    let k_last = kr.history.last().unwrap();
    println!(
        "\nAfter {rounds} rounds KR-FkM used {:.0}% of FkM's downlink bytes.",
        100.0 * k_last.downlink_bytes as f64 / f_last.downlink_bytes as f64
    );
}
