//! The paper's Figure 1 scenario: the `stickfigures` dataset has nine
//! pose clusters that decompose exactly into 3 upper-body + 3 lower-body
//! protocentroids under the sum aggregator.
//!
//! Run with: `cargo run --release --example stickfigures`

use khatri_rao_clustering::prelude::*;

fn render_ascii(pixels: &[f64], width: usize) -> String {
    let mut out = String::new();
    for row in pixels.chunks(width) {
        for &p in row {
            out.push(if p > 0.5 {
                '#'
            } else if p > 0.15 {
                '+'
            } else {
                '.'
            });
        }
        out.push('\n');
    }
    out
}

fn main() {
    let ds = kr_datasets::synthetic::stickfigures(3).max_scaled();
    println!(
        "stickfigures: {} images of {} pixels, {} pose clusters\n",
        ds.n_samples(),
        ds.n_features(),
        ds.n_clusters()
    );

    let model = KrKMeans::new(vec![3, 3])
        .with_aggregator(Aggregator::Sum)
        .with_n_init(20)
        .with_seed(11)
        .fit(&ds.data)
        .expect("valid input");

    let ari = adjusted_rand_index(&model.labels, &ds.labels).unwrap();
    let acc = unsupervised_clustering_accuracy(&model.labels, &ds.labels).unwrap();
    println!("KR-k-Means-+ with 3 + 3 protocentroids:  ARI {ari:.3}  ACC {acc:.3}");
    println!("(paper Table 2 reports ARI = ACC = NMI = 1.0 for this dataset)\n");

    println!("First set of protocentroids (upper-body poses):");
    for j in 0..3 {
        println!("{}", render_ascii(model.protocentroids[0].row(j), 20));
    }
    println!("Second set of protocentroids (lower-body poses):");
    for j in 0..3 {
        println!("{}", render_ascii(model.protocentroids[1].row(j), 20));
    }
    println!("One aggregated centroid (protocentroid 0 ⊕ protocentroid 0):");
    println!("{}", render_ascii(model.centroids().row(0), 20));
}
