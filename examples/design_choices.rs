//! The design-choice toolbox of paper Section 8: budget arithmetic,
//! Propositions 8.1 / 8.2, aggregator selection, and BIC-driven growth
//! of the protocentroid sets.
//!
//! Run with: `cargo run --release --example design_choices`

use kr_core::aggregator::Aggregator;
use kr_core::design;
use kr_core::model_select;
use kr_core::operator::khatri_rao;
use kr_linalg::Matrix;
use rand::{Rng, SeedableRng};

fn main() {
    // --- Budget arithmetic (Prop. 8.1).
    println!("Budget b -> optimal #sets p and representable centroids (b/p)^p");
    for b in [6usize, 12, 16, 24, 30] {
        let p = design::optimal_num_sets(b);
        let split = design::balanced_budget_split(b, p);
        println!(
            "  b = {b:>2}: p* = {p} (candidates near b/e: {:?}), representable = {}",
            design::prop81_candidates(b),
            design::max_representable(&split)
        );
    }

    // --- Bounds on the number of sets (Prop. 8.2).
    println!("\nBounds on #sets guaranteed to represent k centroids (h_min = 3):");
    for k in [9usize, 27, 100] {
        let (lo, hi) = design::prop82_bounds(k, 3);
        println!("  k = {k:>3}: {lo} <= p* <= {hi}");
    }

    // --- Aggregator selection heuristic.
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let t1 = Matrix::from_fn(3, 5, |_, _| rng.gen_range(0.5..3.0));
    let t2 = Matrix::from_fn(3, 5, |_, _| rng.gen_range(0.5..3.0));
    for (name, agg) in [
        ("additive", Aggregator::Sum),
        ("multiplicative", Aggregator::Product),
    ] {
        let grid = khatri_rao(&[t1.clone(), t2.clone()], agg).unwrap();
        let suggestion = design::suggest_aggregator(&grid, 3, 3);
        println!("\n{name} centroid grid -> suggested aggregator: {suggestion}");
    }

    // --- BIC-driven growth of the protocentroid sets (X-Means flavor).
    let (ds, _, _) = kr_datasets::synthetic::kr_structured(
        3,
        3,
        40,
        0.15,
        kr_datasets::synthetic::StructureKind::Additive,
        5,
    );
    let (model, visited) =
        model_select::grow_kr_kmeans(&ds.data, Aggregator::Sum, 10, 5, 6).unwrap();
    println!("\nBIC growth on 3x3-structured data (true k = 9):");
    for c in &visited {
        println!("  hs = {:?} -> k = {:>2}, BIC = {:.1}", c.hs, c.k, c.bic);
    }
    println!("selected grid: {} centroids", model.centroids().nrows());
}
