//! Khatri-Rao deep clustering end to end (paper Section 7): pretrain a
//! Hadamard-compressed autoencoder, initialize latent protocentroids
//! with KR-k-Means, and jointly train with the DKM loss — then compare
//! parameter counts against the uncompressed DKM pipeline.
//!
//! Run with: `cargo run --release --example deep_clustering`
//! (a couple of minutes on one CPU core; sizes are scaled down from the
//! paper's GPU configuration, see DESIGN.md §7)

use kr_core::aggregator::Aggregator;
use kr_deep::autoencoder::{Autoencoder, Compression};
use kr_deep::DeepClustering;
use kr_metrics::unsupervised_clustering_accuracy;

fn main() {
    // optdigits-like glyph digits, reduced for CPU speed.
    let ds = kr_datasets::image::optdigits_like(600, 4).standardized();
    let dims = [64usize, 48, 24, 6];
    println!(
        "optdigits-like: {} x {}, 10 clusters",
        ds.n_samples(),
        ds.n_features()
    );

    // --- Standard DKM: full autoencoder + 10 free centroids.
    let mut full_ae = Autoencoder::new(&dims, Compression::None, 0).unwrap();
    full_ae.pretrain(&ds.data, 40, 128, 1e-3, 1);
    let full_rec = full_ae.reconstruction_loss(&ds.data);
    let dkm = DeepClustering::dkm(10)
        .with_epochs(25)
        .with_batch_size(128)
        .with_lr(1e-3)
        .with_seed(2)
        .fit(full_ae, &ds.data)
        .unwrap();

    // --- Khatri-Rao DKM: compressed autoencoder + 5 + 2 protocentroids.
    let (comp_ae, rank) = kr_deep::autoencoder::pretrain_compressed_matching(
        &ds.data, &dims, 2, 4, full_rec, 40, 128, 1e-3, 2, 3,
    )
    .unwrap();
    let kr_dkm = DeepClustering::kr_dkm(vec![5, 2], Aggregator::Sum)
        .with_epochs(25)
        .with_batch_size(128)
        .with_lr(1e-3)
        .with_seed(2)
        .fit(comp_ae, &ds.data)
        .unwrap();

    println!("\n{:<16}{:>12}{:>10}", "algorithm", "params", "ACC");
    for (name, model) in [("DKM", &dkm), ("KR-DKM", &kr_dkm)] {
        let acc = unsupervised_clustering_accuracy(&model.labels, &ds.labels).unwrap();
        println!("{name:<16}{:>12}{acc:>10.3}", model.n_parameters());
    }
    println!(
        "\nKR-DKM params ratio: {:.2} (Hadamard rank {rank}, 7 protocentroids for 10 centroids)",
        kr_dkm.n_parameters() as f64 / dkm.n_parameters() as f64
    );
}
