//! Case study 1 (paper Section 9.4, Figure 9): color quantization.
//!
//! A 12-vector budget buys 12 colors with k-Means, but 36 colors with
//! Khatri-Rao-k-Means-× (two sets of 6 protocentroids) — the KR codebook
//! preserves the image's red tones far better.
//!
//! Run with: `cargo run --release --example color_quantization`

use khatri_rao_clustering::prelude::*;
use kr_core::kmeans::KMeans;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    // 1000 pixels of the procedural scene (DESIGN.md documents the
    // substitution for the scikit-learn example photo).
    let pixels = kr_datasets::image::quantization_pixels(1000, 5);

    // Random codebook: 12 pixels picked uniformly.
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let random_rows: Vec<usize> = (0..12).map(|_| rng.gen_range(0..pixels.nrows())).collect();
    let random_codebook = pixels.select_rows(&random_rows);
    let random_inertia = inertia(&pixels, &random_codebook);

    // k-Means codebook: 12 centroids.
    let km = KMeans::new(12)
        .with_n_init(20)
        .with_seed(1)
        .fit(&pixels)
        .unwrap();

    // Khatri-Rao codebook: 6 + 6 protocentroids -> 36 colors.
    let kr = KrKMeans::new(vec![6, 6])
        .with_aggregator(Aggregator::Product)
        .with_n_init(20)
        .with_seed(1)
        .fit(&pixels)
        .unwrap();

    println!("Color quantization with a 12-vector codebook budget");
    println!(
        "{:<28}{:>8}{:>10}{:>12}",
        "method", "vectors", "colors", "inertia"
    );
    println!(
        "{:<28}{:>8}{:>10}{:>12.1}",
        "random pixels",
        12,
        12,
        random_inertia * 255.0 * 255.0
    );
    println!(
        "{:<28}{:>8}{:>10}{:>12.1}",
        "k-Means",
        12,
        12,
        km.inertia * 255.0 * 255.0
    );
    println!(
        "{:<28}{:>8}{:>10}{:>12.1}",
        "Khatri-Rao-k-Means-x",
        12,
        36,
        kr.inertia * 255.0 * 255.0
    );
    println!("\n(paper reports 4686 / 2009 / 1144 on its image: random >> k-Means > KR)");

    // How well are reds preserved? Count codebook entries in the red
    // region for both methods.
    let reds = |codebook: &Matrix| {
        codebook
            .rows_iter()
            .filter(|c| c[0] > 0.5 && c[1] < 0.35 && c[2] < 0.3)
            .count()
    };
    println!(
        "red-region codebook entries: k-Means {}, Khatri-Rao {}",
        reds(&km.centroids),
        reds(&kr.centroids())
    );
}
